//! Scoped instrumentation and profiling hooks.
//!
//! SPH-EXA exposes low-overhead hooks around every function of its
//! time-stepping loop; the paper instruments those hooks with PMT calls so that
//! each function's energy is measured from its start to its completion (§2).
//! [`ProfilingHooks`] reproduces that pattern: wrap any closure in
//! [`ProfilingHooks::instrument`] and a [`MeasurementRecord`] is produced per
//! call, or use the RAII [`RegionGuard`] for early returns and `?`-heavy code.
//!
//! Measurement failures never fail the measured code — the closure's result
//! is always returned — but they are no longer *silent*: every swallowed
//! sensor/region error increments the meter's
//! [`PowerMeter::dropped_measurements`](crate::meter::PowerMeter::dropped_measurements)
//! counter (mirrored into an attached [`telemetry`] metrics registry as
//! `pmt.dropped_measurements`) and warns once per label on stderr.
//!
//! This layer measures *energy per region*; the structured wall-clock spans,
//! health gauges and Perfetto-exportable traces live in the [`telemetry`]
//! crate. The two share one timeline: attach a sink with
//! [`PowerMeter::attach_telemetry`](crate::meter::PowerMeter::attach_telemetry)
//! and every completed region record is bridged into the trace as a
//! `"power"`-category span.

use crate::error::Result;
use crate::meter::PowerMeter;
use crate::report::MeasurementRecord;
use std::sync::Arc;

/// RAII guard measuring a region from construction to drop (or explicit finish).
pub struct RegionGuard<'a> {
    meter: &'a PowerMeter,
    label: String,
    finished: bool,
}

impl<'a> RegionGuard<'a> {
    /// Start measuring `label` on `meter`.
    pub fn new(meter: &'a PowerMeter, label: impl Into<String>) -> Result<Self> {
        let label = label.into();
        meter.start_region(label.clone())?;
        Ok(Self {
            meter,
            label,
            finished: false,
        })
    }

    /// Finish the region now and return its record.
    pub fn finish(mut self) -> Result<MeasurementRecord> {
        self.finished = true;
        self.meter.end_region(&self.label)
    }

    /// The region label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // The record is still stored in the meter; only the explicit return
            // value is lost when the guard is dropped without `finish` — unless
            // ending the region itself fails, which counts as a dropped
            // measurement.
            if let Err(err) = self.meter.end_region(&self.label) {
                self.meter.note_dropped(&self.label, &err.to_string());
            }
        }
    }
}

/// The function-hook instrumentation layer used by the simulation framework.
///
/// Hooks can be disabled (`enabled = false`) to measure the overhead of the
/// instrumentation itself, or when a production run should not be profiled.
#[derive(Clone)]
pub struct ProfilingHooks {
    meter: Arc<PowerMeter>,
    enabled: bool,
}

impl ProfilingHooks {
    /// Create hooks bound to a meter.
    pub fn new(meter: Arc<PowerMeter>) -> Self {
        Self { meter, enabled: true }
    }

    /// Create hooks that execute closures without measuring.
    pub fn disabled(meter: Arc<PowerMeter>) -> Self {
        Self { meter, enabled: false }
    }

    /// Whether instrumentation is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable instrumentation.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The underlying meter.
    pub fn meter(&self) -> &Arc<PowerMeter> {
        &self.meter
    }

    /// Set the iteration (timestep) index attached to subsequent records.
    pub fn set_iteration(&self, iteration: Option<u64>) {
        self.meter.set_iteration(iteration);
    }

    /// Run `f` inside a measurement region labelled `label`.
    ///
    /// When instrumentation is disabled the closure runs unmeasured.
    /// Measurement failures never fail the simulation — the closure's result
    /// is always returned — but each one is counted in
    /// [`PowerMeter::dropped_measurements`] and warned about once per label.
    pub fn instrument<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        if let Err(err) = self.meter.start_region(label) {
            self.meter.note_dropped(label, &err.to_string());
            return f();
        }
        let result = f();
        if let Err(err) = self.meter.end_region(label) {
            self.meter.note_dropped(label, &err.to_string());
        }
        result
    }

    /// Run `f` inside a region and also return the measurement record when one
    /// was produced.
    pub fn instrument_with_record<R>(&self, label: &str, f: impl FnOnce() -> R) -> (R, Option<MeasurementRecord>) {
        if !self.enabled {
            return (f(), None);
        }
        if let Err(err) = self.meter.start_region(label) {
            self.meter.note_dropped(label, &err.to_string());
            return (f(), None);
        }
        let result = f();
        let record = match self.meter.end_region(label) {
            Ok(record) => Some(record),
            Err(err) => {
                self.meter.note_dropped(label, &err.to_string());
                None
            }
        };
        (result, record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::dummy::DummySensor;
    use crate::clock::ManualClock;
    use crate::domain::Domain;

    fn setup(power: f64) -> (Arc<PowerMeter>, ManualClock) {
        let clock = ManualClock::new();
        let meter = Arc::new(
            PowerMeter::builder()
                .sensor(DummySensor::new(Domain::gpu(0), power))
                .clock(clock.clone())
                .build(),
        );
        (meter, clock)
    }

    #[test]
    fn guard_measures_until_drop() {
        let (meter, clock) = setup(100.0);
        {
            let _guard = RegionGuard::new(&meter, "scope").unwrap();
            clock.advance(3.0);
        }
        let records = meter.records();
        assert_eq!(records.len(), 1);
        assert!((records[0].energy(Domain::gpu(0)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn guard_finish_returns_record() {
        let (meter, clock) = setup(100.0);
        let guard = RegionGuard::new(&meter, "scope").unwrap();
        assert_eq!(guard.label(), "scope");
        clock.advance(2.0);
        let record = guard.finish().unwrap();
        assert!((record.energy(Domain::gpu(0)) - 200.0).abs() < 1e-9);
        assert_eq!(meter.records().len(), 1);
    }

    #[test]
    fn hooks_instrument_closures() {
        let (meter, clock) = setup(50.0);
        let hooks = ProfilingHooks::new(meter.clone());
        hooks.set_iteration(Some(11));
        let out = hooks.instrument("MomentumEnergy", || {
            clock.advance(2.0);
            7
        });
        assert_eq!(out, 7);
        let records = meter.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "MomentumEnergy");
        assert_eq!(records[0].iteration, Some(11));
        assert!((records[0].energy(Domain::gpu(0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_hooks_do_not_record() {
        let (meter, clock) = setup(50.0);
        let hooks = ProfilingHooks::disabled(meter.clone());
        assert!(!hooks.is_enabled());
        let out = hooks.instrument("x", || {
            clock.advance(1.0);
            1
        });
        assert_eq!(out, 1);
        assert!(meter.records().is_empty());
    }

    #[test]
    fn instrument_with_record_returns_measurement() {
        let (meter, clock) = setup(10.0);
        let hooks = ProfilingHooks::new(meter);
        let (out, record) = hooks.instrument_with_record("y", || {
            clock.advance(5.0);
            "done"
        });
        assert_eq!(out, "done");
        let record = record.unwrap();
        assert!((record.duration_s() - 5.0).abs() < 1e-12);
    }

    /// A sensor whose reads can be made to fail on demand.
    struct FlakySensor {
        fail: std::sync::atomic::AtomicBool,
    }

    impl crate::sensor::Sensor for FlakySensor {
        fn name(&self) -> &str {
            "flaky"
        }
        fn domains(&self) -> Vec<Domain> {
            vec![Domain::gpu(0)]
        }
        fn sample(&self) -> crate::error::Result<Vec<crate::sample::DomainSample>> {
            if self.fail.load(std::sync::atomic::Ordering::Relaxed) {
                Err(crate::error::PmtError::unavailable("flaky", "injected failure"))
            } else {
                Ok(vec![crate::sample::DomainSample::power(Domain::gpu(0), 100.0)])
            }
        }
    }

    #[test]
    fn swallowed_errors_are_counted_not_silent() {
        let sensor = Arc::new(FlakySensor {
            fail: std::sync::atomic::AtomicBool::new(false),
        });
        let meter = Arc::new(
            PowerMeter::builder()
                .shared_sensor(sensor.clone() as Arc<dyn crate::sensor::Sensor>)
                .clock(ManualClock::new())
                .build(),
        );
        let sink = Arc::new(telemetry::Telemetry::new());
        meter.attach_telemetry(sink.clone());
        let hooks = ProfilingHooks::new(meter.clone());

        // Healthy path: nothing dropped.
        assert_eq!(hooks.instrument("ok", || 1), 1);
        assert_eq!(meter.dropped_measurements(), 0);

        // start_region fails -> one drop, closure still runs.
        sensor.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(hooks.instrument("XMass", || 2), 2);
        assert_eq!(meter.dropped_measurements(), 1);

        // end_region fails (start succeeds, sensor breaks mid-region).
        sensor.fail.store(false, std::sync::atomic::Ordering::Relaxed);
        let out = hooks.instrument("XMass", || {
            sensor.fail.store(true, std::sync::atomic::Ordering::Relaxed);
            3
        });
        assert_eq!(out, 3);
        assert_eq!(meter.dropped_measurements(), 2);

        // instrument_with_record's failure path counts too.
        let (out, record) = hooks.instrument_with_record("XMass", || 4);
        assert_eq!((out, record.is_none()), (4, true));
        assert_eq!(meter.dropped_measurements(), 3);

        // Everything is mirrored into the telemetry metrics registry.
        assert_eq!(sink.metrics().snapshot().counter("pmt.dropped_measurements"), Some(3));
    }

    #[test]
    fn guard_drop_failure_is_counted() {
        let sensor = Arc::new(FlakySensor {
            fail: std::sync::atomic::AtomicBool::new(false),
        });
        let meter = PowerMeter::builder()
            .shared_sensor(sensor.clone() as Arc<dyn crate::sensor::Sensor>)
            .clock(ManualClock::new())
            .build();
        {
            let _guard = RegionGuard::new(&meter, "scope").unwrap();
            sensor.fail.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        assert_eq!(meter.dropped_measurements(), 1);
        assert!(meter.records().is_empty());
    }

    #[test]
    fn drops_before_attach_are_carried_into_the_registry() {
        let sensor = Arc::new(FlakySensor {
            fail: std::sync::atomic::AtomicBool::new(true),
        });
        let meter = PowerMeter::builder()
            .shared_sensor(sensor as Arc<dyn crate::sensor::Sensor>)
            .clock(ManualClock::new())
            .build();
        let hooks = ProfilingHooks::new(Arc::new(meter));
        hooks.instrument("early", || ());
        assert_eq!(hooks.meter().dropped_measurements(), 1);
        let sink = Arc::new(telemetry::Telemetry::new());
        hooks.meter().attach_telemetry(sink.clone());
        assert_eq!(sink.metrics().snapshot().counter("pmt.dropped_measurements"), Some(1));
    }

    #[test]
    fn toggling_enabled_flag() {
        let (meter, _clock) = setup(10.0);
        let mut hooks = ProfilingHooks::new(meter.clone());
        hooks.set_enabled(false);
        hooks.instrument("skipped", || ());
        hooks.set_enabled(true);
        hooks.instrument("kept", || ());
        let labels: Vec<String> = meter.records().into_iter().map(|r| r.label).collect();
        assert_eq!(labels, vec!["kept".to_string()]);
    }
}
