//! Scoped instrumentation and profiling hooks.
//!
//! SPH-EXA exposes low-overhead hooks around every function of its
//! time-stepping loop; the paper instruments those hooks with PMT calls so that
//! each function's energy is measured from its start to its completion (§2).
//! [`ProfilingHooks`] reproduces that pattern: wrap any closure in
//! [`ProfilingHooks::instrument`] and a [`MeasurementRecord`] is produced per
//! call, or use the RAII [`RegionGuard`] for early returns and `?`-heavy code.

use crate::error::Result;
use crate::meter::PowerMeter;
use crate::report::MeasurementRecord;
use std::sync::Arc;

/// RAII guard measuring a region from construction to drop (or explicit finish).
pub struct RegionGuard<'a> {
    meter: &'a PowerMeter,
    label: String,
    finished: bool,
}

impl<'a> RegionGuard<'a> {
    /// Start measuring `label` on `meter`.
    pub fn new(meter: &'a PowerMeter, label: impl Into<String>) -> Result<Self> {
        let label = label.into();
        meter.start_region(label.clone())?;
        Ok(Self {
            meter,
            label,
            finished: false,
        })
    }

    /// Finish the region now and return its record.
    pub fn finish(mut self) -> Result<MeasurementRecord> {
        self.finished = true;
        self.meter.end_region(&self.label)
    }

    /// The region label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // The record is still stored in the meter; only the explicit return
            // value is lost when the guard is dropped without `finish`.
            let _ = self.meter.end_region(&self.label);
        }
    }
}

/// The function-hook instrumentation layer used by the simulation framework.
///
/// Hooks can be disabled (`enabled = false`) to measure the overhead of the
/// instrumentation itself, or when a production run should not be profiled.
#[derive(Clone)]
pub struct ProfilingHooks {
    meter: Arc<PowerMeter>,
    enabled: bool,
}

impl ProfilingHooks {
    /// Create hooks bound to a meter.
    pub fn new(meter: Arc<PowerMeter>) -> Self {
        Self { meter, enabled: true }
    }

    /// Create hooks that execute closures without measuring.
    pub fn disabled(meter: Arc<PowerMeter>) -> Self {
        Self { meter, enabled: false }
    }

    /// Whether instrumentation is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable instrumentation.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The underlying meter.
    pub fn meter(&self) -> &Arc<PowerMeter> {
        &self.meter
    }

    /// Set the iteration (timestep) index attached to subsequent records.
    pub fn set_iteration(&self, iteration: Option<u64>) {
        self.meter.set_iteration(iteration);
    }

    /// Run `f` inside a measurement region labelled `label`.
    ///
    /// When instrumentation is disabled the closure runs unmeasured. Measurement
    /// failures are swallowed (never fail the simulation because a sensor read
    /// failed) — the closure's result is always returned.
    pub fn instrument<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        if self.meter.start_region(label).is_err() {
            return f();
        }
        let result = f();
        let _ = self.meter.end_region(label);
        result
    }

    /// Run `f` inside a region and also return the measurement record when one
    /// was produced.
    pub fn instrument_with_record<R>(&self, label: &str, f: impl FnOnce() -> R) -> (R, Option<MeasurementRecord>) {
        if !self.enabled {
            return (f(), None);
        }
        if self.meter.start_region(label).is_err() {
            return (f(), None);
        }
        let result = f();
        let record = self.meter.end_region(label).ok();
        (result, record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::dummy::DummySensor;
    use crate::clock::ManualClock;
    use crate::domain::Domain;

    fn setup(power: f64) -> (Arc<PowerMeter>, ManualClock) {
        let clock = ManualClock::new();
        let meter = Arc::new(
            PowerMeter::builder()
                .sensor(DummySensor::new(Domain::gpu(0), power))
                .clock(clock.clone())
                .build(),
        );
        (meter, clock)
    }

    #[test]
    fn guard_measures_until_drop() {
        let (meter, clock) = setup(100.0);
        {
            let _guard = RegionGuard::new(&meter, "scope").unwrap();
            clock.advance(3.0);
        }
        let records = meter.records();
        assert_eq!(records.len(), 1);
        assert!((records[0].energy(Domain::gpu(0)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn guard_finish_returns_record() {
        let (meter, clock) = setup(100.0);
        let guard = RegionGuard::new(&meter, "scope").unwrap();
        assert_eq!(guard.label(), "scope");
        clock.advance(2.0);
        let record = guard.finish().unwrap();
        assert!((record.energy(Domain::gpu(0)) - 200.0).abs() < 1e-9);
        assert_eq!(meter.records().len(), 1);
    }

    #[test]
    fn hooks_instrument_closures() {
        let (meter, clock) = setup(50.0);
        let hooks = ProfilingHooks::new(meter.clone());
        hooks.set_iteration(Some(11));
        let out = hooks.instrument("MomentumEnergy", || {
            clock.advance(2.0);
            7
        });
        assert_eq!(out, 7);
        let records = meter.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "MomentumEnergy");
        assert_eq!(records[0].iteration, Some(11));
        assert!((records[0].energy(Domain::gpu(0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_hooks_do_not_record() {
        let (meter, clock) = setup(50.0);
        let hooks = ProfilingHooks::disabled(meter.clone());
        assert!(!hooks.is_enabled());
        let out = hooks.instrument("x", || {
            clock.advance(1.0);
            1
        });
        assert_eq!(out, 1);
        assert!(meter.records().is_empty());
    }

    #[test]
    fn instrument_with_record_returns_measurement() {
        let (meter, clock) = setup(10.0);
        let hooks = ProfilingHooks::new(meter);
        let (out, record) = hooks.instrument_with_record("y", || {
            clock.advance(5.0);
            "done"
        });
        assert_eq!(out, "done");
        let record = record.unwrap();
        assert!((record.duration_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn toggling_enabled_flag() {
        let (meter, _clock) = setup(10.0);
        let mut hooks = ProfilingHooks::new(meter.clone());
        hooks.set_enabled(false);
        hooks.instrument("skipped", || ());
        hooks.set_enabled(true);
        hooks.instrument("kept", || ());
        let labels: Vec<String> = meter.records().into_iter().map(|r| r.label).collect();
        assert_eq!(labels, vec!["kept".to_string()]);
    }
}
