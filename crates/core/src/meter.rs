//! The power meter: sampling, integration and region measurement.
//!
//! A [`PowerMeter`] owns a set of [`Sensor`]s and a [`Clock`] and provides:
//!
//! * **polling** — [`PowerMeter::poll`] reads every sensor once and folds the
//!   readings into per-domain [`EnergyAccumulator`]s (and, optionally, raw
//!   traces);
//! * **background sampling** — [`PowerMeter::start_sampling`] spawns a thread
//!   that polls at a fixed interval, for wall-clock deployments;
//! * **regions** — [`PowerMeter::start_region`] / [`PowerMeter::end_region`]
//!   bracket a code section (the SPH-EXA function hooks of the paper) and
//!   attribute the energy consumed in between to a labelled
//!   [`MeasurementRecord`]. Region boundaries force a poll, so counter-based
//!   back-ends yield exact per-region energy.
//! * **observers** — [`RegionObserver`]s registered with
//!   [`PowerMeter::add_region_observer`] are notified at every region boundary.
//!   This is the hook point for closed-loop controllers such as the `autotune`
//!   DVFS governor, which adjusts the GPU clock at `start_region` and learns
//!   from the finished record at `end_region`.

use crate::clock::{Clock, WallClock};
use crate::domain::Domain;
use crate::error::{PmtError, Result};
use crate::integration::EnergyAccumulator;
use crate::report::{MeasurementRecord, RankReport};
use crate::sample::TimedSample;
use crate::sensor::Sensor;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::Telemetry;

/// Callback interface invoked at measurement-region boundaries.
///
/// Observers run synchronously inside [`PowerMeter::start_region`] /
/// [`PowerMeter::end_region`], *after* the meter's own bookkeeping, with no
/// meter lock held — an observer may therefore call back into the meter.
/// The `autotune` crate's governor implements this trait to close the
/// measure→decide→actuate loop per simulation stage.
pub trait RegionObserver: Send + Sync {
    /// A region labelled `label` just started at meter time `time_s`.
    fn on_region_start(&self, label: &str, time_s: f64);

    /// A region just ended, producing `record`.
    fn on_region_end(&self, record: &MeasurementRecord);
}

/// Builder for [`PowerMeter`].
pub struct MeterBuilder {
    sensors: Vec<Arc<dyn Sensor>>,
    clock: Arc<dyn Clock>,
    rank: u32,
    hostname: String,
    record_traces: bool,
}

impl Default for MeterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MeterBuilder {
    /// Start building a meter with a wall clock, rank 0 and no sensors.
    pub fn new() -> Self {
        Self {
            sensors: Vec::new(),
            clock: Arc::new(WallClock::new()),
            rank: 0,
            hostname: "localhost".to_string(),
            record_traces: false,
        }
    }

    /// Add a sensor.
    pub fn sensor<S: Sensor + 'static>(mut self, sensor: S) -> Self {
        self.sensors.push(Arc::new(sensor));
        self
    }

    /// Add an already-shared sensor.
    pub fn shared_sensor(mut self, sensor: Arc<dyn Sensor>) -> Self {
        self.sensors.push(sensor);
        self
    }

    /// Use a custom clock (e.g. a simulated clock adapter).
    pub fn clock<C: Clock + 'static>(mut self, clock: C) -> Self {
        self.clock = Arc::new(clock);
        self
    }

    /// Use an already-shared clock.
    pub fn shared_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Set the MPI rank recorded in measurement records.
    pub fn rank(mut self, rank: u32) -> Self {
        self.rank = rank;
        self
    }

    /// Set the hostname recorded in the rank report.
    pub fn hostname(mut self, hostname: impl Into<String>) -> Self {
        self.hostname = hostname.into();
        self
    }

    /// Record raw timestamped samples per domain (power traces) in addition to
    /// the cumulative accumulators.
    pub fn record_traces(mut self, yes: bool) -> Self {
        self.record_traces = yes;
        self
    }

    /// Build the meter.
    pub fn build(self) -> PowerMeter {
        PowerMeter {
            shared: Arc::new(MeterShared {
                sensors: self.sensors,
                clock: self.clock,
                rank: self.rank,
                hostname: self.hostname,
                record_traces: self.record_traces,
                state: Mutex::new(MeterState::default()),
                observers: Mutex::new(Vec::new()),
                telemetry: Mutex::new(None),
                dropped: AtomicU64::new(0),
                warned_labels: Mutex::new(BTreeSet::new()),
            }),
            sampler: Mutex::new(None),
        }
    }
}

#[derive(Default)]
struct MeterState {
    accums: BTreeMap<Domain, EnergyAccumulator>,
    traces: BTreeMap<Domain, Vec<TimedSample>>,
    active: BTreeMap<String, RegionStart>,
    records: Vec<MeasurementRecord>,
    iteration: Option<u64>,
    polls: u64,
}

struct RegionStart {
    start_s: f64,
    energy: BTreeMap<Domain, f64>,
    iteration: Option<u64>,
}

struct MeterShared {
    sensors: Vec<Arc<dyn Sensor>>,
    clock: Arc<dyn Clock>,
    rank: u32,
    hostname: String,
    record_traces: bool,
    state: Mutex<MeterState>,
    observers: Mutex<Vec<Arc<dyn RegionObserver>>>,
    /// Telemetry sink completed region records bridge into (cat `"power"`).
    telemetry: Mutex<Option<Arc<Telemetry>>>,
    /// Measurements lost to swallowed sensor/region errors (see
    /// [`PowerMeter::dropped_measurements`]).
    dropped: AtomicU64,
    /// Labels a drop warning has already been printed for.
    warned_labels: Mutex<BTreeSet<String>>,
}

impl MeterShared {
    fn poll(&self) -> Result<usize> {
        let now = self.clock.now_s();
        let mut readings = Vec::new();
        for sensor in &self.sensors {
            readings.extend(sensor.sample()?);
        }
        let mut state = self.state.lock();
        let count = readings.len();
        for sample in readings {
            state.accums.entry(sample.domain).or_default().update(now, &sample);
            if self.record_traces {
                state
                    .traces
                    .entry(sample.domain)
                    .or_default()
                    .push(TimedSample { time_s: now, sample });
            }
        }
        state.polls += 1;
        Ok(count)
    }

    fn snapshot_energy(state: &MeterState) -> BTreeMap<Domain, f64> {
        state.accums.iter().map(|(d, acc)| (*d, acc.energy_j())).collect()
    }
}

/// Application-level power/energy meter (the Rust equivalent of a PMT instance).
pub struct PowerMeter {
    shared: Arc<MeterShared>,
    sampler: Mutex<Option<SamplerHandle>>,
}

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl PowerMeter {
    /// Start building a meter.
    pub fn builder() -> MeterBuilder {
        MeterBuilder::new()
    }

    /// The MPI rank this meter reports for.
    pub fn rank(&self) -> u32 {
        self.shared.rank
    }

    /// The hostname this meter reports for.
    pub fn hostname(&self) -> &str {
        &self.shared.hostname
    }

    /// Current time on the meter's clock, in seconds.
    pub fn now_s(&self) -> f64 {
        self.shared.clock.now_s()
    }

    /// Names of the attached sensor back-ends.
    pub fn sensor_names(&self) -> Vec<String> {
        self.shared.sensors.iter().map(|s| s.name().to_string()).collect()
    }

    /// All measurement domains currently known (union of sensor domains that
    /// have produced at least one sample, plus declared domains).
    pub fn domains(&self) -> Vec<Domain> {
        let mut out: Vec<Domain> = self.shared.sensors.iter().flat_map(|s| s.domains()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Sample every sensor once. Returns the number of domain samples folded in.
    pub fn poll(&self) -> Result<usize> {
        self.shared.poll()
    }

    /// Number of polls performed so far (including background samples).
    pub fn poll_count(&self) -> u64 {
        self.shared.state.lock().polls
    }

    /// Cumulative energy attributed to `domain` since the meter was created.
    pub fn total_energy_j(&self, domain: Domain) -> f64 {
        self.shared
            .state
            .lock()
            .accums
            .get(&domain)
            .map(|a| a.energy_j())
            .unwrap_or(0.0)
    }

    /// Cumulative energy of every domain.
    pub fn total_energy_by_domain(&self) -> BTreeMap<Domain, f64> {
        MeterShared::snapshot_energy(&self.shared.state.lock())
    }

    /// Most recent power reading of a domain, if any.
    pub fn last_power_w(&self, domain: Domain) -> Option<f64> {
        self.shared.state.lock().accums.get(&domain).and_then(|a| a.last_power_w())
    }

    /// Recorded trace of a domain (empty unless `record_traces(true)` was set).
    pub fn trace(&self, domain: Domain) -> Vec<TimedSample> {
        self.shared.state.lock().traces.get(&domain).cloned().unwrap_or_default()
    }

    /// Set the iteration (timestep) index attached to subsequently completed regions.
    pub fn set_iteration(&self, iteration: Option<u64>) {
        self.shared.state.lock().iteration = iteration;
    }

    /// Attach a telemetry sink: every completed region record is mirrored
    /// into its event stream as a `"power"` span carrying the per-domain
    /// energies, and dropped-measurement counts surface through its metrics
    /// registry as the `pmt.dropped_measurements` counter.
    pub fn attach_telemetry(&self, sink: Arc<Telemetry>) {
        // Carry any drops that happened before attachment into the registry.
        let already = self.shared.dropped.load(Ordering::Relaxed);
        if already > 0 {
            sink.metrics().counter("pmt.dropped_measurements").add(already);
        }
        *self.shared.telemetry.lock() = Some(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<Arc<Telemetry>> {
        self.shared.telemetry.lock().clone()
    }

    /// How many measurements have been silently lost to swallowed sensor or
    /// region errors (in [`crate::instrument::ProfilingHooks::instrument`] and
    /// guard drops). Mirrored into the attached telemetry registry as the
    /// `pmt.dropped_measurements` counter.
    pub fn dropped_measurements(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Count one lost measurement and warn once per label on stderr.
    pub(crate) fn note_dropped(&self, label: &str, why: &str) {
        self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = self.telemetry() {
            sink.metrics().counter("pmt.dropped_measurements").inc();
        }
        if self.shared.warned_labels.lock().insert(label.to_string()) {
            eprintln!(
                "warning: pmt dropped a measurement for region {label:?} (rank {}): {why}",
                self.shared.rank
            );
        }
    }

    /// Register an observer notified at every region boundary.
    ///
    /// Observers are invoked in registration order, synchronously, with no
    /// meter lock held.
    pub fn add_region_observer(&self, observer: Arc<dyn RegionObserver>) {
        self.shared.observers.lock().push(observer);
    }

    /// Number of registered region observers.
    pub fn region_observer_count(&self) -> usize {
        self.shared.observers.lock().len()
    }

    fn notify_start(&self, label: &str, time_s: f64) {
        let observers = self.shared.observers.lock().clone();
        for observer in observers {
            observer.on_region_start(label, time_s);
        }
    }

    fn notify_end(&self, record: &MeasurementRecord) {
        let observers = self.shared.observers.lock().clone();
        for observer in observers {
            observer.on_region_end(record);
        }
    }

    /// Begin a labelled measurement region. Forces a poll so that region
    /// boundaries align with fresh counter readings.
    pub fn start_region(&self, label: impl Into<String>) -> Result<()> {
        let label = label.into();
        self.poll()?;
        let start_s;
        {
            let mut state = self.shared.state.lock();
            if state.active.contains_key(&label) {
                return Err(PmtError::RegionAlreadyActive(label));
            }
            let snapshot = MeterShared::snapshot_energy(&state);
            let iteration = state.iteration;
            start_s = self.shared.clock.now_s();
            state.active.insert(
                label.clone(),
                RegionStart {
                    start_s,
                    energy: snapshot,
                    iteration,
                },
            );
        }
        self.notify_start(&label, start_s);
        Ok(())
    }

    /// End a labelled measurement region and return (and store) its record.
    pub fn end_region(&self, label: impl AsRef<str>) -> Result<MeasurementRecord> {
        let label = label.as_ref();
        self.poll()?;
        let record = {
            let mut state = self.shared.state.lock();
            let start = state
                .active
                .remove(label)
                .ok_or_else(|| PmtError::InvalidState(format!("region {label:?} was never started")))?;
            let end_snapshot = MeterShared::snapshot_energy(&state);
            let mut energy_j = BTreeMap::new();
            for (domain, end_e) in &end_snapshot {
                let start_e = start.energy.get(domain).copied().unwrap_or(0.0);
                energy_j.insert(*domain, (end_e - start_e).max(0.0));
            }
            let record = MeasurementRecord {
                label: label.to_string(),
                rank: self.shared.rank,
                iteration: start.iteration,
                start_s: start.start_s,
                end_s: self.shared.clock.now_s(),
                energy_j,
            };
            state.records.push(record.clone());
            record
        };
        self.notify_end(&record);
        self.bridge_record(&record);
        Ok(record)
    }

    /// Mirror a completed region record into the attached telemetry stream as
    /// a `"power"` span, so power regions and wall-clock spans share one
    /// timeline. The span carries the total and per-domain energies as args.
    fn bridge_record(&self, record: &MeasurementRecord) {
        let Some(sink) = self.telemetry() else {
            return;
        };
        if !sink.enabled() {
            return;
        }
        let total: f64 = record.energy_j.values().sum();
        let mut owned: Vec<(String, f64)> = Vec::with_capacity(record.energy_j.len() + 2);
        owned.push(("energy_j".to_string(), total));
        for (domain, joules) in &record.energy_j {
            owned.push((format!("{domain}_j"), *joules));
        }
        if let Some(iteration) = record.iteration {
            owned.push(("iteration".to_string(), iteration as f64));
        }
        let args: Vec<(&str, f64)> = owned.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        sink.bridge_span("power", &record.label, record.rank, record.duration_s(), &args);
    }

    /// Measure a closure as a region.
    pub fn measure<R>(&self, label: impl Into<String>, f: impl FnOnce() -> R) -> Result<(R, MeasurementRecord)> {
        let label = label.into();
        self.start_region(label.clone())?;
        let result = f();
        let record = self.end_region(&label)?;
        Ok((result, record))
    }

    /// All completed measurement records so far (clone).
    pub fn records(&self) -> Vec<MeasurementRecord> {
        self.shared.state.lock().records.clone()
    }

    /// Take ownership of the completed records, leaving the meter's list empty.
    pub fn take_records(&self) -> Vec<MeasurementRecord> {
        std::mem::take(&mut self.shared.state.lock().records)
    }

    /// Build the rank report (records gathered so far).
    pub fn report(&self) -> RankReport {
        RankReport {
            rank: self.shared.rank,
            hostname: self.shared.hostname.clone(),
            records: self.records(),
        }
    }

    /// Start a background sampling thread polling every `interval`.
    ///
    /// Only meaningful with a wall clock; simulated-clock deployments should
    /// call [`PowerMeter::poll`] explicitly whenever simulated time advances.
    pub fn start_sampling(&self, interval: Duration) -> Result<()> {
        let mut sampler = self.sampler.lock();
        if sampler.is_some() {
            return Err(PmtError::InvalidState("background sampler already running".into()));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let stop_clone = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("pmt-sampler".to_string())
            .spawn(move || {
                while !stop_clone.load(Ordering::Relaxed) {
                    // Sampling failures are not fatal for the application being
                    // measured; they only reduce measurement fidelity.
                    let _ = shared.poll();
                    std::thread::sleep(interval);
                }
            })
            .map_err(|e| PmtError::Io { path: None, source: e })?;
        *sampler = Some(SamplerHandle { stop, thread });
        Ok(())
    }

    /// True if the background sampler is running.
    pub fn is_sampling(&self) -> bool {
        self.sampler.lock().is_some()
    }

    /// Stop the background sampling thread, if running.
    pub fn stop_sampling(&self) {
        if let Some(handle) = self.sampler.lock().take() {
            handle.stop.store(true, Ordering::Relaxed);
            let _ = handle.thread.join();
        }
    }
}

impl Drop for PowerMeter {
    fn drop(&mut self) {
        self.stop_sampling();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::dummy::DummySensor;
    use crate::clock::ManualClock;

    fn manual_meter(power_w: f64) -> (PowerMeter, ManualClock, Arc<DummySensor>) {
        let clock = ManualClock::new();
        let sensor = Arc::new(DummySensor::new(Domain::gpu(0), power_w));
        let meter = PowerMeter::builder()
            .shared_sensor(sensor.clone() as Arc<dyn Sensor>)
            .clock(clock.clone())
            .rank(5)
            .hostname("nid000042")
            .build();
        (meter, clock, sensor)
    }

    #[test]
    fn region_energy_equals_power_times_time() {
        let (meter, clock, _sensor) = manual_meter(200.0);
        meter.start_region("step").unwrap();
        clock.advance(10.0);
        let record = meter.end_region("step").unwrap();
        assert!((record.energy(Domain::gpu(0)) - 2000.0).abs() < 1e-9);
        assert!((record.duration_s() - 10.0).abs() < 1e-12);
        assert_eq!(record.rank, 5);
    }

    #[test]
    fn power_change_mid_region_needs_intermediate_poll() {
        let (meter, clock, sensor) = manual_meter(100.0);
        meter.start_region("step").unwrap();
        clock.advance(5.0);
        meter.poll().unwrap(); // sample before the power changes
        sensor.set_power(300.0);
        clock.advance(5.0);
        let record = meter.end_region("step").unwrap();
        // 5 s at 100 W + 5 s trapezoid between 100 and 300 W = 500 + 1000 J.
        assert!((record.energy(Domain::gpu(0)) - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn nested_and_sequential_regions() {
        let (meter, clock, _) = manual_meter(100.0);
        meter.set_iteration(Some(3));
        meter.start_region("outer").unwrap();
        clock.advance(1.0);
        meter.start_region("inner").unwrap();
        clock.advance(2.0);
        let inner = meter.end_region("inner").unwrap();
        clock.advance(1.0);
        let outer = meter.end_region("outer").unwrap();
        assert!((inner.energy(Domain::gpu(0)) - 200.0).abs() < 1e-9);
        assert!((outer.energy(Domain::gpu(0)) - 400.0).abs() < 1e-9);
        assert_eq!(inner.iteration, Some(3));
        assert_eq!(meter.records().len(), 2);
    }

    #[test]
    fn double_start_is_an_error() {
        let (meter, _, _) = manual_meter(10.0);
        meter.start_region("x").unwrap();
        assert!(matches!(meter.start_region("x"), Err(PmtError::RegionAlreadyActive(_))));
    }

    #[test]
    fn end_without_start_is_an_error() {
        let (meter, _, _) = manual_meter(10.0);
        assert!(matches!(meter.end_region("nope"), Err(PmtError::InvalidState(_))));
    }

    #[test]
    fn measure_wraps_closure() {
        let (meter, clock, _) = manual_meter(50.0);
        let (value, record) = meter
            .measure("work", || {
                clock.advance(4.0);
                42
            })
            .unwrap();
        assert_eq!(value, 42);
        assert!((record.energy(Domain::gpu(0)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn report_collects_rank_and_hostname() {
        let (meter, clock, _) = manual_meter(10.0);
        meter.measure("a", || clock.advance(1.0)).unwrap();
        let report = meter.report();
        assert_eq!(report.rank, 5);
        assert_eq!(report.hostname, "nid000042");
        assert_eq!(report.records.len(), 1);
    }

    #[test]
    fn traces_are_recorded_when_enabled() {
        let clock = ManualClock::new();
        let meter = PowerMeter::builder()
            .sensor(DummySensor::new(Domain::node(), 500.0))
            .clock(clock.clone())
            .record_traces(true)
            .build();
        for _ in 0..5 {
            meter.poll().unwrap();
            clock.advance(1.0);
        }
        assert_eq!(meter.trace(Domain::node()).len(), 5);
        assert!(meter.trace(Domain::gpu(0)).is_empty());
    }

    #[test]
    fn total_energy_accumulates_across_regions() {
        let (meter, clock, _) = manual_meter(100.0);
        meter.measure("a", || clock.advance(1.0)).unwrap();
        meter.measure("b", || clock.advance(1.0)).unwrap();
        assert!((meter.total_energy_j(Domain::gpu(0)) - 200.0).abs() < 1e-9);
        assert_eq!(meter.total_energy_by_domain().len(), 1);
    }

    #[test]
    fn background_sampler_polls_with_wall_clock() {
        let sensor = DummySensor::new(Domain::cpu(0), 80.0);
        let meter = PowerMeter::builder().sensor(sensor).build();
        meter.start_sampling(Duration::from_millis(5)).unwrap();
        assert!(meter.is_sampling());
        assert!(meter.start_sampling(Duration::from_millis(5)).is_err());
        std::thread::sleep(Duration::from_millis(60));
        meter.stop_sampling();
        assert!(!meter.is_sampling());
        assert!(meter.poll_count() >= 3, "expected several background polls");
        assert!(meter.total_energy_j(Domain::cpu(0)) > 0.0);
        assert_eq!(meter.last_power_w(Domain::cpu(0)), Some(80.0));
    }

    #[test]
    fn region_observers_see_boundaries() {
        struct Recorder {
            events: Mutex<Vec<String>>,
        }
        impl RegionObserver for Recorder {
            fn on_region_start(&self, label: &str, time_s: f64) {
                self.events.lock().push(format!("start {label} @{time_s}"));
            }
            fn on_region_end(&self, record: &MeasurementRecord) {
                self.events
                    .lock()
                    .push(format!("end {} {:.0}J", record.label, record.energy(Domain::gpu(0))));
            }
        }

        let (meter, clock, _) = manual_meter(100.0);
        let recorder = Arc::new(Recorder {
            events: Mutex::new(Vec::new()),
        });
        meter.add_region_observer(recorder.clone());
        assert_eq!(meter.region_observer_count(), 1);
        meter.measure("step", || clock.advance(2.0)).unwrap();
        let events = recorder.events.lock().clone();
        assert_eq!(events, vec!["start step @0".to_string(), "end step 200J".to_string()]);
    }

    #[test]
    fn observer_may_call_back_into_the_meter() {
        struct Nested;
        impl RegionObserver for Nested {
            fn on_region_start(&self, _label: &str, _time_s: f64) {}
            fn on_region_end(&self, _record: &MeasurementRecord) {}
        }
        let (meter, clock, _) = manual_meter(10.0);
        meter.add_region_observer(Arc::new(Nested));
        // Re-entrancy: polling from within a boundary must not deadlock.
        meter.start_region("outer").unwrap();
        meter.poll().unwrap();
        clock.advance(1.0);
        meter.end_region("outer").unwrap();
        assert_eq!(meter.records().len(), 1);
    }

    #[test]
    fn region_records_bridge_into_telemetry_as_power_spans() {
        let (meter, clock, _) = manual_meter(200.0);
        let sink = Arc::new(Telemetry::new());
        meter.attach_telemetry(sink.clone());
        meter.set_iteration(Some(7));
        meter.measure("MomentumEnergy", || clock.advance(10.0)).unwrap();
        let events = sink.events_snapshot();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.cat, e.name.as_str(), e.rank), ("power", "MomentumEnergy", 5));
        match e.kind {
            telemetry::EventKind::Span { dur_us, .. } => assert_eq!(dur_us, 10_000_000),
            ref k => panic!("expected a span, got {k:?}"),
        }
        let arg = |key: &str| e.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        assert_eq!(arg("energy_j"), Some(2000.0));
        assert_eq!(arg("gpu:0_j"), Some(2000.0));
        assert_eq!(arg("iteration"), Some(7.0));
    }

    #[test]
    fn disabled_sink_bridges_nothing() {
        let (meter, clock, _) = manual_meter(100.0);
        let sink = Arc::new(Telemetry::disabled());
        meter.attach_telemetry(sink.clone());
        meter.measure("step", || clock.advance(1.0)).unwrap();
        assert_eq!(sink.event_count(), 0);
        assert_eq!(meter.records().len(), 1, "the pmt record itself is unaffected");
    }

    #[test]
    fn take_records_drains() {
        let (meter, clock, _) = manual_meter(10.0);
        meter.measure("a", || clock.advance(1.0)).unwrap();
        assert_eq!(meter.take_records().len(), 1);
        assert!(meter.records().is_empty());
    }
}
