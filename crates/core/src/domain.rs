//! Measurement domains.
//!
//! A *domain* is one thing a sensor can attribute power/energy to: the whole
//! node, a CPU package, a GPU die, a GPU card (two dies on MI250X), the memory,
//! or the residual "other". Domains are the unit at which measurement records
//! are kept and at which the analysis crate aggregates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The class of hardware a measurement refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainKind {
    /// Whole node (BMC / pm_counters `power`).
    Node,
    /// One CPU package.
    Cpu,
    /// One GPU die (a GCD on MI250X, the full die on A100).
    Gpu,
    /// One physical GPU card. On MI250X this covers **two** dies; Cray
    /// `pm_counters` report at this granularity.
    GpuCard,
    /// Node DRAM.
    Memory,
    /// Residual: node minus everything attributed elsewhere.
    Other,
}

impl DomainKind {
    /// Short label used in file names and report columns.
    pub fn label(&self) -> &'static str {
        match self {
            DomainKind::Node => "node",
            DomainKind::Cpu => "cpu",
            DomainKind::Gpu => "gpu",
            DomainKind::GpuCard => "gpu_card",
            DomainKind::Memory => "mem",
            DomainKind::Other => "other",
        }
    }
}

/// One measurement domain: a kind plus an index (e.g. `gpu:3`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Domain {
    /// The hardware class.
    pub kind: DomainKind,
    /// Index within the class (0 for singleton domains such as the node).
    pub index: u32,
}

impl Domain {
    /// Build a domain.
    pub fn new(kind: DomainKind, index: u32) -> Self {
        Self { kind, index }
    }

    /// The whole-node domain.
    pub fn node() -> Self {
        Self::new(DomainKind::Node, 0)
    }

    /// CPU package `i`.
    pub fn cpu(i: u32) -> Self {
        Self::new(DomainKind::Cpu, i)
    }

    /// GPU die `i`.
    pub fn gpu(i: u32) -> Self {
        Self::new(DomainKind::Gpu, i)
    }

    /// GPU card `i`.
    pub fn gpu_card(i: u32) -> Self {
        Self::new(DomainKind::GpuCard, i)
    }

    /// Node memory.
    pub fn memory() -> Self {
        Self::new(DomainKind::Memory, 0)
    }

    /// Residual "other" domain.
    pub fn other() -> Self {
        Self::new(DomainKind::Other, 0)
    }

    /// True if this domain refers to GPU hardware (die or card granularity).
    pub fn is_gpu(&self) -> bool {
        matches!(self.kind, DomainKind::Gpu | DomainKind::GpuCard)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind.label(), self.index)
    }
}

impl FromStr for Domain {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind_str, idx_str) = s.split_once(':').ok_or_else(|| format!("domain {s:?} missing ':'"))?;
        let kind = match kind_str {
            "node" => DomainKind::Node,
            "cpu" => DomainKind::Cpu,
            "gpu" => DomainKind::Gpu,
            "gpu_card" => DomainKind::GpuCard,
            "mem" => DomainKind::Memory,
            "other" => DomainKind::Other,
            other => return Err(format!("unknown domain kind {other:?}")),
        };
        let index: u32 = idx_str.parse().map_err(|e| format!("bad domain index in {s:?}: {e}"))?;
        Ok(Domain { kind, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for d in [
            Domain::node(),
            Domain::cpu(1),
            Domain::gpu(7),
            Domain::gpu_card(3),
            Domain::memory(),
            Domain::other(),
        ] {
            let s = d.to_string();
            let parsed: Domain = s.parse().unwrap();
            assert_eq!(parsed, d, "round-trip failed for {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("gpu".parse::<Domain>().is_err());
        assert!("disk:0".parse::<Domain>().is_err());
        assert!("gpu:x".parse::<Domain>().is_err());
    }

    #[test]
    fn is_gpu_covers_both_granularities() {
        assert!(Domain::gpu(0).is_gpu());
        assert!(Domain::gpu_card(0).is_gpu());
        assert!(!Domain::cpu(0).is_gpu());
        assert!(!Domain::memory().is_gpu());
    }

    #[test]
    fn domains_are_ordered() {
        let mut v = [Domain::gpu(1), Domain::cpu(0), Domain::gpu(0)];
        v.sort();
        assert_eq!(v[0], Domain::cpu(0));
        assert_eq!(v[1], Domain::gpu(0));
    }
}
