//! Error types for the measurement toolkit.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PmtError>;

/// Errors produced by sensors, back-ends and the power meter.
#[derive(Debug)]
pub enum PmtError {
    /// An underlying I/O operation failed (sysfs read, report write, ...).
    Io {
        /// Path involved, if any.
        path: Option<PathBuf>,
        /// The underlying error.
        source: io::Error,
    },
    /// A sensor file or API response could not be parsed.
    Parse {
        /// What was being parsed.
        what: String,
        /// The offending content (possibly truncated).
        content: String,
    },
    /// The requested back-end is not available on this platform
    /// (e.g. no `pm_counters` directory, no GPU).
    BackendUnavailable {
        /// Back-end name.
        backend: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A measurement domain was requested that the sensor does not expose.
    UnknownDomain(String),
    /// The meter was used in the wrong state (e.g. `stop_region` without
    /// `start_region`).
    InvalidState(String),
    /// A measurement region with this label is already active.
    RegionAlreadyActive(String),
    /// No samples were collected for a region, so no energy can be attributed.
    NoSamples(String),
}

impl PmtError {
    /// Build an I/O error tagged with a path.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        PmtError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Build a parse error.
    pub fn parse(what: impl Into<String>, content: impl Into<String>) -> Self {
        let mut content = content.into();
        if content.len() > 200 {
            content.truncate(200);
        }
        PmtError::Parse {
            what: what.into(),
            content,
        }
    }

    /// Build a back-end-unavailable error.
    pub fn unavailable(backend: impl Into<String>, reason: impl Into<String>) -> Self {
        PmtError::BackendUnavailable {
            backend: backend.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmtError::Io { path, source } => match path {
                Some(p) => write!(f, "I/O error on {}: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            PmtError::Parse { what, content } => {
                write!(f, "failed to parse {what}: {content:?}")
            }
            PmtError::BackendUnavailable { backend, reason } => {
                write!(f, "back-end {backend} unavailable: {reason}")
            }
            PmtError::UnknownDomain(d) => write!(f, "unknown measurement domain: {d}"),
            PmtError::InvalidState(s) => write!(f, "invalid meter state: {s}"),
            PmtError::RegionAlreadyActive(l) => write!(f, "measurement region {l:?} already active"),
            PmtError::NoSamples(l) => write!(f, "no samples collected for region {l:?}"),
        }
    }
}

impl std::error::Error for PmtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmtError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for PmtError {
    fn from(source: io::Error) -> Self {
        PmtError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_path() {
        let e = PmtError::io(
            "/sys/cray/pm_counters/power",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("pm_counters"));
        assert!(s.contains("gone"));
    }

    #[test]
    fn parse_error_truncates_content() {
        let long = "x".repeat(500);
        let e = PmtError::parse("energy_uj", long);
        match e {
            PmtError::Parse { content, .. } => assert!(content.len() <= 200),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn from_io_error_has_no_path() {
        let e: PmtError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = PmtError::UnknownDomain("gpu7".into());
        takes_err(&e);
    }
}
