//! `hot-path-alloc` — the zero-steady-state-allocation contract of the warm
//! neighbour pipeline (pinned dynamically by the `alloc_free_neighbors`
//! counting-allocator test; this lint proves the shape at the source level).
//!
//! In warm-path modules, fresh heap construction is flagged: `Vec::new()`,
//! `Vec::with_capacity`, `vec![..]`, `Box::new`, `format!`, `.collect()`,
//! `.to_vec()`, `.to_string()`, `.to_owned()`, `.clone()`.
//!
//! Growth calls (`push`/`extend*`/`resize*`/`reserve`/`append`/`insert`) are
//! allowed **only** on retained buffers — receivers rooted at `self` or at a
//! `&mut` parameter — which is the workspace reuse idiom (`clear()` +
//! `reserve()` + fill into storage that survives the call). Growth into a
//! local is a fresh allocation wearing a loop, and is flagged.
//!
//! Recognised cold constructors (`new`, `default`, `empty`, `build`,
//! `with_capacity`, `of_points`) are exempt: they run once, not per step.

use super::{is_ident, is_method_call, is_punct, receiver_root, Ctx};
use crate::diag::{Diagnostic, HOT_PATH_ALLOC};
use crate::lexer::TokKind;
use crate::model::Func;

const COLD_FNS: &[&str] = &["new", "default", "empty", "build", "with_capacity", "of_points"];
const FRESH_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "clone"];
const GROW_METHODS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "resize",
    "resize_with",
    "reserve",
    "append",
    "insert",
];

/// Names of `&mut` parameters of `func` (retained buffers owned by the
/// caller). `self` is always retained.
fn retained_params(ctx: &Ctx, func: &Func) -> Vec<String> {
    let mut out = Vec::new();
    let (start, end) = func.params;
    if end <= start + 2 {
        return out;
    }
    // Split the param list on top-level commas.
    let mut depth = 0i64;
    let mut group_start = start + 1;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for i in start + 1..end - 1 {
        let t = &ctx.toks[i];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, ">") {
            depth -= 1;
        } else if t.kind == TokKind::Punct && t.text == "<<" {
            depth += 2;
        } else if t.kind == TokKind::Punct && t.text == ">>" {
            depth -= 2;
        } else if is_punct(t, ",") && depth == 0 {
            groups.push((group_start, i));
            group_start = i + 1;
        }
    }
    if group_start < end - 1 {
        groups.push((group_start, end - 1));
    }
    for (gs, ge) in groups {
        // Name = last ident before the top-level `:`; type = tokens after it.
        let Some(colon) = (gs..ge).find(|&i| is_punct(&ctx.toks[i], ":")) else {
            continue; // a `self` receiver form; `self` is always retained
        };
        let name = ctx.toks[gs..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            .map(|t| t.text.clone());
        // `&mut T` (allowing a lifetime between `&` and `mut`).
        let mut ty = colon + 1;
        if ty < ge && is_punct(&ctx.toks[ty], "&") {
            ty += 1;
            if ty < ge && ctx.toks[ty].kind == TokKind::Lifetime {
                ty += 1;
            }
            if ty < ge && is_ident(&ctx.toks[ty], "mut") {
                if let Some(name) = name {
                    out.push(name);
                }
            }
        }
    }
    out
}

fn flag(ctx: &Ctx, out: &mut Vec<Diagnostic>, idx: usize, what: &str) {
    ctx.diag(
        out,
        idx,
        HOT_PATH_ALLOC,
        format!(
            "{what} in a warm-path module: the neighbour pipeline must perform zero heap \
             allocations at steady state (pinned by `alloc_free_neighbors`)"
        ),
        "route the buffer through `StepWorkspace`/scratch parameters (clear + reserve + fill \
         into retained storage), or suppress a cold-path convenience with \
         `// sphlint::allow(hot-path-alloc, <why this never runs per step>)`"
            .into(),
    );
}

pub fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if !ctx.class.warm_path {
        return;
    }
    for func in &ctx.model.funcs {
        if func.is_test || COLD_FNS.contains(&func.name.as_str()) || func.body.1 <= func.body.0 {
            continue;
        }
        // Skip functions nested inside a cold constructor.
        if ctx
            .model
            .funcs
            .iter()
            .any(|f| COLD_FNS.contains(&f.name.as_str()) && f.body.0 < func.body.0 && func.body.1 < f.body.1)
        {
            continue;
        }
        let retained = retained_params(ctx, func);
        let (bs, be) = func.body;
        let mut i = bs;
        while i < be.min(ctx.toks.len()) {
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            // Skip tokens owned by a nested non-test fn: they get their own pass.
            if ctx.model.func_at(i).map(|f| f.body) != Some(func.body) {
                i += 1;
                continue;
            }
            let nxt = |k: usize| ctx.toks.get(i + k);
            let name = t.text.as_str();
            // Vec::new() / String::new() / Vec::with_capacity(..) / Box::new(..)
            if (name == "Vec" || name == "String" || name == "Box")
                && nxt(1).is_some_and(|t| is_punct(t, "::"))
                && nxt(2).is_some_and(|t| t.kind == TokKind::Ident)
                && nxt(3).is_some_and(|t| is_punct(t, "("))
            {
                let m = &ctx.toks[i + 2].text;
                if m == "new" || m == "with_capacity" || m == "from" {
                    flag(ctx, out, i, &format!("fresh `{name}::{m}(..)`"));
                    i += 4;
                    continue;
                }
            }
            // vec![..] / format!(..)
            if (name == "vec" || name == "format") && nxt(1).is_some_and(|t| is_punct(t, "!")) {
                flag(ctx, out, i, &format!("`{name}!` allocation"));
                i += 2;
                continue;
            }
            // .collect() / .collect::<..>()
            if name == "collect"
                && i > 0
                && is_punct(&ctx.toks[i - 1], ".")
                && nxt(1).is_some_and(|t| is_punct(t, "(") || is_punct(t, "::"))
            {
                flag(ctx, out, i, "`.collect()` into a fresh container");
                i += 1;
                continue;
            }
            if FRESH_METHODS.contains(&name) && is_method_call(ctx.toks, i) {
                flag(ctx, out, i, &format!("owning `.{name}()`"));
                i += 1;
                continue;
            }
            if GROW_METHODS.contains(&name) && is_method_call(ctx.toks, i) {
                let root = receiver_root(ctx.toks, i - 1);
                let allowed = match &root {
                    Some(r) => r == "self" || retained.contains(r),
                    None => false,
                };
                if !allowed {
                    flag(
                        ctx,
                        out,
                        i,
                        &format!(
                            "`.{name}()` grows `{}`, which is not a retained buffer (`self` \
                             field or `&mut` parameter)",
                            root.as_deref().unwrap_or("a temporary")
                        ),
                    );
                }
                i += 1;
                continue;
            }
            i += 1;
        }
    }
}
