//! `telemetry-naming` — every metric/span name must follow the documented
//! grammar (README "Observability"), so dashboards, the Chrome-trace
//! validator and the summary tables can parse streams from any build:
//!
//! ```text
//! comm.<kind>.<calls|messages|bytes>   kind ∈ {gather, broadcast, allreduce,
//!                                              allgather, alltoall, barrier, p2p}
//! comm.<backend>.<kind>.<field>        backend ∈ {shm, socket}; per-transport
//!                                      splits of the same counters
//! comm.overlap.<metric>                ghost-exchange overlap gauges
//! health.<metric>                      per-step conservation / neighbour gauges
//!                                      (incl. the `health.dt_bins` rung histogram)
//! sim.rank<r>.<metric>                 per-rank population gauges
//! sim.<subsystem>.events               monotonic event counters (autotune
//!                                      retunes, `sim.timestep.events` cycle plans)
//! pmt.<metric>                         power-meter internals
//! <stage>.propose | <stage>.observe    autotune decision instants
//! ```
//!
//! Segments may be format placeholders (`{rank}`, `{}`) or documentation
//! placeholders (`<kind>`). The lint checks (a) every string literal whose
//! first segment is a reserved root, wherever it appears (names are often
//! built with `format!` away from the emission site), and (b) dotted
//! literals passed directly to counter/gauge/histogram/span/instant calls,
//! whose root must be reserved (or a `<stage>.propose/observe` instant).
//! Span/instant/gauge *categories* must come from the documented set.

use super::{is_method_call, is_punct, Ctx};
use crate::diag::{Diagnostic, TELEMETRY_NAMING};
use crate::lexer::TokKind;

const RESERVED_ROOTS: &[&str] = &["comm", "health", "sim", "pmt"];
const COMM_KINDS: &[&str] = &[
    "gather",
    "broadcast",
    "allreduce",
    "allgather",
    "alltoall",
    "barrier",
    "p2p",
];
const COMM_FIELDS: &[&str] = &["calls", "messages", "bytes"];
const COMM_BACKENDS: &[&str] = &["shm", "socket"];
const CATEGORIES: &[&str] = &["step", "stage", "health", "sim", "comm", "autotune", "power"];
const METRIC_METHODS: &[&str] = &["counter", "gauge", "histogram", "counter_sample", "instant", "span"];

fn is_placeholder(seg: &str) -> bool {
    seg.contains('{') || seg.contains('<')
}

fn is_metric_ident(seg: &str) -> bool {
    !seg.is_empty() && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Validate a dotted name with a reserved root; `None` means well-formed.
fn grammar_error(name: &str) -> Option<String> {
    let segs: Vec<&str> = name.split('.').collect();
    let root = segs[0];
    let ok = match root {
        "comm" => match segs.len() {
            // `comm.overlap.<metric>` gauges, or the classic
            // `comm.<kind>.<calls|messages|bytes>` counters.
            3 => {
                (segs[1] == "overlap" && (is_placeholder(segs[2]) || is_metric_ident(segs[2])))
                    || ((is_placeholder(segs[1]) || COMM_KINDS.contains(&segs[1]))
                        && (is_placeholder(segs[2]) || COMM_FIELDS.contains(&segs[2])))
            }
            // Per-transport splits: `comm.<backend>.<kind>.<field>`.
            4 => {
                (is_placeholder(segs[1]) || COMM_BACKENDS.contains(&segs[1]))
                    && (is_placeholder(segs[2]) || COMM_KINDS.contains(&segs[2]))
                    && (is_placeholder(segs[3]) || COMM_FIELDS.contains(&segs[3]))
            }
            _ => false,
        },
        "health" | "pmt" => segs.len() == 2 && (is_placeholder(segs[1]) || is_metric_ident(segs[1])),
        "sim" => {
            segs.len() == 3
                && ((segs[1].starts_with("rank")
                    && {
                        let r = &segs[1][4..];
                        !r.is_empty() && (is_placeholder(r) || r.chars().all(|c| c.is_ascii_digit()))
                    }
                    && (is_placeholder(segs[2]) || is_metric_ident(segs[2])))
                    || (segs[2] == "events" && (is_placeholder(segs[1]) || is_metric_ident(segs[1]))))
        }
        _ => return Some(format!("`{root}` is not a documented metric root")),
    };
    if ok {
        None
    } else {
        Some(match root {
            "comm" => "expected `comm.<kind>.<calls|messages|bytes>`, \
                       `comm.<shm|socket>.<kind>.<field>` or `comm.overlap.<metric>`"
                .into(),
            "health" => "expected `health.<metric>`".into(),
            "pmt" => "expected `pmt.<metric>`".into(),
            _ => "expected `sim.rank<r>.<metric>` or `sim.<subsystem>.events`".into(),
        })
    }
}

pub fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    // Pass A: reserved-root literals anywhere in live code.
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Str || ctx.is_test(i) || !t.text.contains('.') {
            continue;
        }
        let root = t.text.split('.').next().unwrap_or("");
        if !RESERVED_ROOTS.contains(&root) {
            continue;
        }
        if let Some(err) = grammar_error(&t.text) {
            ctx.diag(
                out,
                i,
                TELEMETRY_NAMING,
                format!("telemetry name \"{}\" violates the documented grammar: {err}", t.text),
                "follow the README \"Observability\" naming table (the Chrome-trace validator \
                 and summary emitters parse these prefixes); a deliberate off-grammar name \
                 needs `// sphlint::allow(telemetry-naming, <consumer that expects it>)`"
                    .into(),
            );
        }
    }
    // Pass B: literals passed directly to the metric/span constructors.
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident
            || !METRIC_METHODS.contains(&t.text.as_str())
            || !is_method_call(ctx.toks, i)
            || ctx.is_test(i)
        {
            continue;
        }
        let open = i + 1;
        let mut depth = 0i64;
        let mut j = open;
        let mut first_arg_str: Option<usize> = None;
        while j < ctx.toks.len() {
            let a = &ctx.toks[j];
            if is_punct(a, "(") {
                depth += 1;
            } else if is_punct(a, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                if j == open + 1 && a.kind == TokKind::Str {
                    first_arg_str = Some(j);
                }
                if a.kind == TokKind::Str && a.text.contains('.') {
                    let root = a.text.split('.').next().unwrap_or("");
                    if !RESERVED_ROOTS.contains(&root) {
                        // `<stage>.propose` / `<stage>.observe` instants are
                        // the one non-reserved dotted family.
                        let segs: Vec<&str> = a.text.split('.').collect();
                        let decision = segs.len() == 2
                            && is_placeholder(segs[0])
                            && (segs[1] == "propose" || segs[1] == "observe");
                        if !decision {
                            ctx.diag(
                                out,
                                j,
                                TELEMETRY_NAMING,
                                format!(
                                    "metric name \"{}\" passed to `{}` is outside every \
                                     documented grammar root (comm/health/sim/pmt or \
                                     `<stage>.propose|observe`)",
                                    a.text, t.text
                                ),
                                "pick a documented root or extend the grammar in the README \
                                 *and* this lint together; suppress only with a consumer cited: \
                                 `// sphlint::allow(telemetry-naming, <consumer>)`"
                                    .into(),
                            );
                        }
                    }
                }
            }
            j += 1;
        }
        // Category check for the event-stream constructors (first literal
        // argument without a dot = the track category).
        if matches!(t.text.as_str(), "span" | "instant" | "gauge" | "counter_sample") {
            if let Some(k) = first_arg_str {
                let cat = &ctx.toks[k].text;
                if !cat.contains('.') && !CATEGORIES.contains(&cat.as_str()) {
                    ctx.diag(
                        out,
                        k,
                        TELEMETRY_NAMING,
                        format!(
                            "span/track category \"{cat}\" is not in the documented set \
                             {CATEGORIES:?}"
                        ),
                        "use an existing category, or add the new one to the README \
                         \"Observability\" table and this lint in the same change"
                            .into(),
                    );
                }
            }
        }
    }
}
