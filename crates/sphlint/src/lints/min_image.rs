//! `min-image-discipline` — every pair separation in a pair-kernel module
//! must go through the shared minimum-image map (PR 5's `MinImage` /
//! `dx_periodic`), so periodic boxes sum over nearest images and the open
//! path stays bit-identical through the `const PERIODIC` specialisation.
//!
//! The lint finds raw coordinate-pair subtractions — `x[i] - x[j]`,
//! `particles.x[i] - particles.x[j]` — in functions that never consult the
//! minimum-image machinery (`MinImage`, `mi`, `dx_periodic`). A kernel loop
//! like that silently computes through-the-box distances and breaks every
//! periodic scenario (Gresho's confinement check is the dynamic witness;
//! this is the static one). Subtractions against scalars (`x[i] - cx`) are
//! not pair separations and are not flagged.

use super::{is_punct, Ctx};
use crate::diag::{Diagnostic, MIN_IMAGE};
use crate::lexer::TokKind;

/// Identifiers whose presence marks a function as minimum-image aware.
const AWARE: &[&str] = &["MinImage", "mi", "dx_periodic", "min_image"];

const COMPONENTS: &[&str] = &["x", "y", "z"];

/// If the tokens ending at `end` (exclusive) form an indexed coordinate
/// access `…x[..]`, return the component letter.
fn component_before(toks: &[crate::lexer::Tok], end: usize) -> Option<&str> {
    if end == 0 || !is_punct(&toks[end - 1], "]") {
        return None;
    }
    // Walk back to the matching `[`.
    let mut depth = 0i64;
    let mut j = end - 1;
    loop {
        if is_punct(&toks[j], "]") {
            depth += 1;
        } else if is_punct(&toks[j], "[") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let field = &toks[j - 1];
    if field.kind != TokKind::Ident {
        return None;
    }
    COMPONENTS.iter().find(|&&c| c == field.text).copied()
}

/// If the tokens starting at `start` form an indexed coordinate access
/// (optionally behind a receiver chain: `particles.x[`, `self.p.x[`),
/// return the component letter.
fn component_after(toks: &[crate::lexer::Tok], start: usize) -> Option<&str> {
    let mut j = start;
    // Skip a leading receiver chain `ident . ident . …`.
    while j + 1 < toks.len()
        && toks[j].kind == TokKind::Ident
        && is_punct(&toks[j + 1], ".")
        && j + 2 < toks.len()
        && toks[j + 2].kind == TokKind::Ident
    {
        j += 2;
    }
    if j + 1 < toks.len()
        && toks[j].kind == TokKind::Ident
        && COMPONENTS.contains(&toks[j].text.as_str())
        && is_punct(&toks[j + 1], "[")
    {
        return Some(&toks[j].text);
    }
    None
}

pub fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if !ctx.class.pair_kernel {
        return;
    }
    for func in &ctx.model.funcs {
        if func.is_test || func.body.1 <= func.body.0 {
            continue;
        }
        let (bs, be) = func.body;
        let body = &ctx.toks[bs..be.min(ctx.toks.len())];
        if body
            .iter()
            .any(|t| t.kind == TokKind::Ident && AWARE.contains(&t.text.as_str()))
        {
            continue; // the function consults the minimum-image map
        }
        for i in bs..be.min(ctx.toks.len()) {
            if !is_punct(&ctx.toks[i], "-") || ctx.is_test(i) {
                continue;
            }
            // Only report sites owned by this function (not a nested fn).
            if ctx.model.func_at(i).map(|f| f.body) != Some(func.body) {
                continue;
            }
            let Some(left) = component_before(ctx.toks, i) else {
                continue;
            };
            let Some(right) = component_after(ctx.toks, i + 1) else {
                continue;
            };
            if left == right {
                ctx.diag(
                    out,
                    i,
                    MIN_IMAGE,
                    format!(
                        "raw coordinate-pair subtraction on `{left}` in `{}` bypasses the \
                         minimum-image convention: periodic boxes will compute through-the-box \
                         distances instead of nearest-image separations",
                        func.name
                    ),
                    "hoist `let mi = MinImage::of(&boundary);` out of the loop and map the \
                     deltas (`mi.map(dx, dy, dz)` / `mi.dist_sq(..)`), or use `dx_periodic` for \
                     one-off callers; genuinely open-box geometry can be suppressed with \
                     `// sphlint::allow(min-image-discipline, <why the box is open here>)`"
                        .into(),
                );
            }
        }
    }
}
