//! The lint framework: file classification, shared token utilities, and the
//! registry that runs every lint over one lexed + modelled source file.

pub mod collective_order;
pub mod float_determinism;
pub mod hot_path_alloc;
pub mod min_image;
pub mod telemetry_naming;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::Model;

/// What contracts apply to a file. The workspace driver classifies real
/// paths; the fixture corpus sets these directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Warm-path module: the zero-steady-state-allocation contract applies
    /// (kernels, CSR builder, octree, step workspace).
    pub warm_path: bool,
    /// Pair-kernel module: every position-pair separation must go through
    /// the shared minimum-image map.
    pub pair_kernel: bool,
    /// The whole file is test code (integration tests, benches).
    pub test_file: bool,
}

/// Everything a lint needs to inspect one file.
pub struct Ctx<'a> {
    pub file: &'a str,
    pub toks: &'a [Tok],
    pub model: &'a Model,
    pub class: FileClass,
}

impl<'a> Ctx<'a> {
    /// Is the token at `idx` owned by test code?
    pub fn is_test(&self, idx: usize) -> bool {
        self.class.test_file || self.model.in_test_code(idx)
    }

    pub fn diag(&self, out: &mut Vec<Diagnostic>, idx: usize, lint: &'static str, message: String, suggestion: String) {
        out.push(Diagnostic {
            file: self.file.to_string(),
            line: self.toks[idx].line,
            lint,
            message,
            suggestion,
        });
    }
}

/// Run every lint over one file.
pub fn run_all(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    collective_order::check(ctx, &mut out);
    hot_path_alloc::check(ctx, &mut out);
    min_image::check(ctx, &mut out);
    float_determinism::check(ctx, &mut out);
    telemetry_naming::check(ctx, &mut out);
    out
}

pub(crate) fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

pub(crate) fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Is token `idx` a method call `.<name>(`? Returns true when the previous
/// token is `.` and the next is `(`.
pub(crate) fn is_method_call(toks: &[Tok], idx: usize) -> bool {
    idx > 0 && is_punct(&toks[idx - 1], ".") && idx + 1 < toks.len() && is_punct(&toks[idx + 1], "(")
}

/// Root identifier of a receiver chain ending just before the `.` at
/// `dot_idx`: `self.nodes` -> `self`, `scratch.rows[..n]` -> `scratch`,
/// `sim.comm().gather` -> `sim`. Returns `None` for literal/temporary
/// receivers (`(a + b).push(..)` etc.).
pub(crate) fn receiver_root(toks: &[Tok], dot_idx: usize) -> Option<String> {
    let mut i = dot_idx; // points at the `.`
    let mut root: Option<String> = None;
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        if is_punct(prev, "]") || is_punct(prev, ")") {
            // Walk back over the bracketed group.
            let (open, close) = if prev.text == "]" { ("[", "]") } else { ("(", ")") };
            let mut depth = 0i64;
            let mut j = i - 1;
            loop {
                if is_punct(&toks[j], close) {
                    depth += 1;
                } else if is_punct(&toks[j], open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return root;
                }
                j -= 1;
            }
            i = j;
            continue;
        }
        if prev.kind == TokKind::Ident {
            root = Some(prev.text.clone());
            i -= 1;
            // Keep walking if the ident is itself part of a field chain.
            if i > 0 && (is_punct(&toks[i - 1], ".") || is_punct(&toks[i - 1], "::")) {
                i -= 1;
                continue;
            }
            break;
        }
        break;
    }
    root
}

/// Render a token range as a short one-line snippet for messages.
pub(crate) fn snippet(toks: &[Tok], range: (usize, usize)) -> String {
    let mut s = String::new();
    for t in &toks[range.0..range.1.min(toks.len())] {
        if !s.is_empty()
            && (t.kind != TokKind::Punct || t.text.len() > 1)
            && !matches!(s.chars().last(), Some('(') | Some('[') | Some('.'))
        {
            s.push(' ');
        }
        match t.kind {
            TokKind::Str => {
                s.push('"');
                s.push_str(&t.text);
                s.push('"');
            }
            _ => s.push_str(&t.text),
        }
        if s.len() > 60 {
            s.push_str(" …");
            break;
        }
    }
    s
}
