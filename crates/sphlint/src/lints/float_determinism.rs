//! `float-determinism` — floating-point ordering and fixture determinism.
//!
//! The repo's PR 2 convention: every float ordering goes through
//! `f64::total_cmp`, never `partial_cmp().unwrap()`. `partial_cmp` on floats
//! is a silent landmine — a NaN produced upstream turns a sort into a panic
//! (or, with `unwrap_or`, into a *nondeterministic order*), and distributed
//! reductions then disagree across ranks. The lint flags every
//! `.partial_cmp(` call site, in live code and tests alike.
//!
//! Test fixtures must also be reproducible: wall-clock (`SystemTime::now`)
//! and entropy-seeded randomness (`thread_rng`, `from_entropy`,
//! `rand::random`) inside test code make failures unreplayable and are
//! flagged. `Instant::now` is deliberately allowed — measuring elapsed time
//! is not fixture data.

use super::{is_method_call, is_punct, Ctx};
use crate::diag::{Diagnostic, FLOAT_DETERMINISM};
use crate::lexer::TokKind;

const ENTROPY_FNS: &[&str] = &["thread_rng", "from_entropy"];

pub fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "partial_cmp" && is_method_call(ctx.toks, i) {
            ctx.diag(
                out,
                i,
                FLOAT_DETERMINISM,
                "`.partial_cmp(..)` on floats is a partial order: NaN panics the unwrap or \
                 scrambles the sort, and rank-replicated orderings stop agreeing"
                    .into(),
                "use `f64::total_cmp` (the repo-wide convention since PR 2); a genuine \
                 non-float PartialOrd use can be suppressed with \
                 `// sphlint::allow(float-determinism, <the compared type>)`"
                    .into(),
            );
            continue;
        }
        // Fixture nondeterminism: only inside test code.
        if !ctx.is_test(i) {
            continue;
        }
        let flagged = if ENTROPY_FNS.contains(&t.text.as_str()) && ctx.toks.get(i + 1).is_some_and(|n| is_punct(n, "("))
        {
            Some(t.text.clone())
        } else if t.text == "now" && i >= 2 && is_punct(&ctx.toks[i - 1], "::") && ctx.toks[i - 2].text == "SystemTime"
        {
            Some("SystemTime::now".into())
        } else if t.text == "random" && i >= 2 && is_punct(&ctx.toks[i - 1], "::") && ctx.toks[i - 2].text == "rand" {
            Some("rand::random".into())
        } else {
            None
        };
        if let Some(what) = flagged {
            ctx.diag(
                out,
                i,
                FLOAT_DETERMINISM,
                format!(
                    "`{what}` in test code: date/entropy-seeded fixtures make failures \
                     unreplayable (run-to-run nondeterminism)"
                ),
                "seed the generator explicitly (the vendored `rand` shim is seedable) or pin \
                 the timestamp; suppress with \
                 `// sphlint::allow(float-determinism, <reason>)` if the value never reaches \
                 an assertion"
                    .into(),
            );
        }
    }
}
