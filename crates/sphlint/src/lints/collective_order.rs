//! `collective-order` — the "every rank the same collectives, in the same
//! order, or none" contract from the PR 4 cross-collective race and the PR 6
//! shared-sink rule.
//!
//! A `Comm` collective issued under a condition that can differ between
//! ranks (anything derived from the rank id or per-rank particle
//! populations) deadlocks or cross-matches envelopes as soon as the
//! condition splits the world. The lint flags:
//!
//! * a collective call lexically inside a branch whose condition references
//!   rank-divergent state (`rank`, `*_rank`, `n_owned`, `n_ghosts`, …);
//! * a collective call *after* a rank-divergent branch that early-exits
//!   (`return` skips the rest of the function on some ranks only;
//!   `continue`/`break` skip the rest of the enclosing loop body);
//! * a nonblocking `isend`/`irecv` post whose handle is still un-waited when
//!   a later collective in the same function runs (the PR 9 overlap
//!   contract): the collective is a synchronisation point, and a handle
//!   crossing it makes completion order rank-dependent — post, compute,
//!   `wait`, *then* collect. Handles that escape the function (returned or
//!   stored for a later step) are the caller's responsibility and not
//!   flagged.
//!
//! Conditions derived from replicated data (allgathered counts, shared
//! scenario config, a shared telemetry `Arc`) are uniform and not flagged.
//! A provably uniform use of a rank-mentioning condition can be suppressed
//! with `// sphlint::allow(collective-order, <why it is uniform>)`.

use super::{is_ident, is_method_call, is_punct, snippet, Ctx};
use crate::diag::{Diagnostic, COLLECTIVE_ORDER};
use crate::lexer::TokKind;
use crate::model::Cond;

/// Collectives with names distinctive enough to match on any receiver.
const DISTINCTIVE: &[&str] = &[
    "allgather",
    "alltoall",
    "allreduce_sum",
    "allreduce_max",
    "allreduce_min",
];
/// Collectives whose names collide with ordinary methods (`ParticleSet::gather`),
/// matched only on a `comm` receiver (`self.comm.gather`, `comm.barrier`,
/// `sim.comm().broadcast`).
const COMM_ONLY: &[&str] = &["gather", "broadcast", "barrier"];

/// Identifiers whose value differs across ranks by construction.
fn divergent_ident(name: &str) -> bool {
    name == "rank"
        || name == "rank_tag"
        || name == "n_owned"
        || name == "n_ghosts"
        || name == "is_root"
        || (name.ends_with("_rank") && name != "n_rank")
}

fn cond_divergent(ctx: &Ctx, cond: (usize, usize)) -> bool {
    ctx.toks[cond.0..cond.1.min(ctx.toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && divergent_ident(&t.text))
}

/// Does the conditional body contain an early exit of the given kinds?
fn body_has_exit(ctx: &Ctx, body: (usize, usize), kinds: &[&str]) -> bool {
    ctx.toks[body.0..body.1.min(ctx.toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && kinds.contains(&t.text.as_str()))
}

fn is_collective_at(ctx: &Ctx, i: usize) -> bool {
    let t = &ctx.toks[i];
    if t.kind != TokKind::Ident || !is_method_call(ctx.toks, i) {
        return false;
    }
    let name = t.text.as_str();
    if DISTINCTIVE.contains(&name) {
        return true;
    }
    if COMM_ONLY.contains(&name) {
        // Receiver must end in `comm` or `comm()`.
        let before = &ctx.toks[..i - 1];
        if let Some(last) = before.last() {
            if is_ident(last, "comm") {
                return true;
            }
            if is_punct(last, ")")
                && before.len() >= 3
                && is_punct(&before[before.len() - 2], "(")
                && is_ident(&before[before.len() - 3], "comm")
            {
                return true;
            }
        }
        return false;
    }
    false
}

/// Case 3: a nonblocking `isend`/`irecv` post whose handle has not been
/// `wait`ed by the time a later collective in the same function runs. The
/// scan is lexical: from the post forward to the end of the enclosing
/// function, the first `.wait(...)` method call counts as completion (the
/// overlap pattern always drains every handle it posted once it drains any),
/// and a collective reached first is the violation. Posts whose handles
/// escape the function never meet a later collective here and are not
/// flagged.
fn check_unwaited_handles(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident
            || !(t.text == "isend" || t.text == "irecv")
            || !is_method_call(ctx.toks, i)
            || ctx.is_test(i)
        {
            continue;
        }
        let Some(func) = ctx.model.func_at(i) else {
            continue;
        };
        let post = t.text.clone();
        for j in i + 1..func.body.1.min(ctx.toks.len()) {
            let a = &ctx.toks[j];
            if a.kind == TokKind::Ident && a.text == "wait" && is_method_call(ctx.toks, j) {
                break; // the posted handles are drained before any collective
            }
            if is_collective_at(ctx, j) {
                ctx.diag(
                    out,
                    i,
                    COLLECTIVE_ORDER,
                    format!(
                        "nonblocking `{post}` posted here is still un-waited when the collective \
                         `{}` (line {}) runs: a collective is a synchronisation point, and an \
                         in-flight handle crossing it makes completion order rank-dependent",
                        ctx.toks[j].text, ctx.toks[j].line,
                    ),
                    "`wait` every posted handle before the collective (post, compute, wait, \
                     collect), or move the collective ahead of the post"
                        .into(),
                );
                break;
            }
        }
    }
}

pub fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    check_unwaited_handles(ctx, out);
    let divergent: Vec<&Cond> = ctx.model.conds.iter().filter(|c| cond_divergent(ctx, c.cond)).collect();
    if divergent.is_empty() {
        return;
    }
    for i in 0..ctx.toks.len() {
        if !is_collective_at(ctx, i) || ctx.is_test(i) {
            continue;
        }
        let name = &ctx.toks[i].text;
        // Case 1: collective inside a rank-divergent branch.
        if let Some(c) = divergent.iter().find(|c| c.body.0 <= i && i < c.body.1) {
            ctx.diag(
                out,
                i,
                COLLECTIVE_ORDER,
                format!(
                    "collective `{name}` issued under the rank-divergent condition `{}`: ranks \
                     taking different branches issue different collective sequences, which \
                     deadlocks or cross-matches envelopes (the PR 4 gather/broadcast race)",
                    snippet(ctx.toks, c.cond)
                ),
                "hoist the collective out of the branch, or derive the condition from \
                 replicated data (allgather it first); if the condition is provably uniform, \
                 suppress with `// sphlint::allow(collective-order, <why it is uniform>)`"
                    .into(),
            );
            continue;
        }
        // Case 2: collective after a rank-divergent early exit.
        let Some(func) = ctx.model.func_at(i) else {
            continue;
        };
        for c in &divergent {
            if c.body.1 > i || c.body.0 < func.body.0 || c.body.1 > func.body.1 {
                continue; // not an earlier branch of this function
            }
            let reaches = if body_has_exit(ctx, c.body, &["return"]) {
                true // skips the rest of the function on some ranks
            } else if body_has_exit(ctx, c.body, &["continue", "break"]) {
                // Skips the rest of the enclosing loop body only.
                ctx.model.loop_at(c.body.0).is_some_and(|l| l.0 <= i && i < l.1)
            } else {
                false
            };
            if reaches {
                ctx.diag(
                    out,
                    i,
                    COLLECTIVE_ORDER,
                    format!(
                        "collective `{name}` is skipped on ranks that took the early exit under \
                         the rank-divergent condition `{}` (line {}): the world no longer agrees \
                         on the collective sequence",
                        snippet(ctx.toks, c.cond),
                        ctx.toks[c.cond.0].line,
                    ),
                    "make the early exit a collective decision (reduce the predicate first) or \
                     move the collective above the branch; if provably uniform, suppress with \
                     `// sphlint::allow(collective-order, <reason>)`"
                        .into(),
                );
                break;
            }
        }
    }
}
