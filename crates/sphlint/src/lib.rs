//! # sphlint — workspace-native static analysis
//!
//! Proves the codebase's domain contracts at the source level, on every
//! commit, instead of hoping a 4-rank run deadlocks in CI or a fuzzer gets
//! lucky:
//!
//! | lint id                | contract                                                    |
//! |------------------------|-------------------------------------------------------------|
//! | `collective-order`     | every rank issues the same `Comm` collectives, or none       |
//! | `hot-path-alloc`       | warm neighbour pipeline performs zero steady-state allocs    |
//! | `min-image-discipline` | pair separations go through the shared `MinImage` map        |
//! | `float-determinism`    | float orderings use `total_cmp`; fixtures are replayable     |
//! | `telemetry-naming`     | metric/span names follow the documented grammar              |
//! | `allow-syntax`         | every suppression carries a lint id and a reason             |
//!
//! Suppression: `// sphlint::allow(<lint-id>, <reason>)` on the flagged line
//! or the line directly above. The reason is mandatory — it is the audit
//! trail for why the contract does not apply at that site.
//!
//! The analyzer is dependency-free by design: a hand-rolled lexer
//! ([`lexer`]), a token-level structural model ([`model`]), and five
//! pattern lints ([`lints`]) — the same idiom as the repo's hand-rolled
//! JSON codecs. Run it with `cargo run -p sphlint -- --workspace`.

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod workspace;

pub use diag::{apply_suppressions, parse_suppressions, Diagnostic};
pub use lints::FileClass;

/// Lint one source text under the given classification, returning the
/// unsuppressed diagnostics (suppressed ones are dropped; malformed
/// `sphlint::allow` comments surface as `allow-syntax` diagnostics).
pub fn check_source(file: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    let (diags, _suppressed) = check_source_counted(file, src, class);
    diags
}

/// [`check_source`] that also reports how many diagnostics a valid
/// `sphlint::allow` swallowed (the driver prints the count).
pub fn check_source_counted(file: &str, src: &str, class: FileClass) -> (Vec<Diagnostic>, usize) {
    let lexed = lexer::lex(src);
    let model = model::build(&lexed.toks);
    let ctx = lints::Ctx {
        file,
        toks: &lexed.toks,
        model: &model,
        class,
    };
    let mut diags = lints::run_all(&ctx);
    let (sups, malformed) = diag::parse_suppressions(&lexed.comments);
    for (line, why) in malformed {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            lint: diag::ALLOW_SYNTAX,
            message: format!("malformed `sphlint::allow`: {why}"),
            suggestion: "write `// sphlint::allow(<lint-id>, <non-empty reason>)`".into(),
        });
    }
    let (mut kept, suppressed) = diag::apply_suppressions(diags, &sups);
    kept.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    (kept, suppressed)
}
