//! `sphlint` CLI.
//!
//! ```text
//! cargo run -p sphlint -- --workspace [--root <dir>] [--report <file.jsonl>]
//! cargo run -p sphlint -- <file.rs> [<file.rs> ...] [--report <file.jsonl>]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed diagnostics, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut report: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => return usage("--root needs a directory"),
            },
            "--report" => match args.next() {
                Some(r) => report = Some(PathBuf::from(r)),
                None => return usage("--report needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or explicit .rs files");
    }
    if workspace && !files.is_empty() {
        return usage("--workspace and explicit files are mutually exclusive");
    }

    let run = if workspace {
        sphlint::workspace::run_workspace(&root)
    } else {
        sphlint::workspace::run_files(&files)
    };

    for err in &run.io_errors {
        eprintln!("sphlint: io error: {err}");
    }
    for d in &run.diagnostics {
        println!("{}", d.render());
    }
    if let Some(path) = &report {
        if let Err(e) = sphlint::workspace::write_report(path, &run.diagnostics) {
            eprintln!("sphlint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "sphlint: checked {} files — {} diagnostic(s), {} suppressed",
        run.files_checked,
        run.diagnostics.len(),
        run.suppressed
    );
    if !run.io_errors.is_empty() {
        return ExitCode::from(2);
    }
    if run.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

const USAGE: &str = "sphlint — workspace-native static analysis
    --workspace          lint every first-party .rs under the root
    --root <dir>         workspace root (default .)
    --report <file>      write diagnostics as JSONL
    <file.rs> ...        lint explicit files instead of the workspace";

fn usage(msg: &str) -> ExitCode {
    eprintln!("sphlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
