//! A hand-rolled Rust lexer: just enough tokenization for contract linting.
//!
//! The lexer does not aim for rustc fidelity — it aims for *never
//! misclassifying* the constructs the lints key on. In particular it must get
//! right: line tracking, nested block comments, all string literal flavours
//! (escaped, raw, byte), char literals vs lifetimes, and the multi-character
//! operators (`->`, `::`, `..`) whose component characters (`-`, `:`, `.`)
//! the lints pattern-match on. Comments are captured out-of-band so the
//! suppression pass (`// sphlint::allow(id, reason)`) can see them.

/// One lexical token with the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier name, string contents (between the quotes, escapes left
    /// verbatim), or the operator/punctuation spelling.
    pub text: String,
    pub line: u32,
}

/// Coarse token classes; the lints only need to tell these apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// `"..."`, `r"..."`, `r#"..."#`, `b"..."` — `text` holds the contents.
    Str,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a` in `&'a str`.
    Lifetime,
    /// Integer or float literal, suffix included.
    Num,
    /// Operators and delimiters; multi-character operators arrive as one
    /// token (`->`, `=>`, `::`, `..`, `..=`, `&&`, `||`, shifts, compound
    /// assignment), everything else as a single character.
    Punct,
}

/// A `//` line comment (doc comments included), captured for the suppression
/// pass. Block comments cannot carry suppressions — a trailing `//` comment
/// pins the allow to a line, which is what the diagnostics key on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    /// Comment text after the leading `//` (and any `/`/`!` doc marker).
    pub text: String,
    /// `///` or `//!` — doc comments *describe* the suppression syntax
    /// rather than invoke it, so the suppression parser skips them.
    pub doc: bool,
}

/// Token stream plus the out-of-band line comments of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch is trivial.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "::", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenize `src`. Unterminated constructs consume to end-of-file rather than
/// erroring: a linter must degrade gracefully on code rustc will reject.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let mut j = i + 2;
            let doc = j < n && (b[j] == '/' || b[j] == '!');
            while j < n && (b[j] == '/' || b[j] == '!') {
                j += 1;
            }
            let start = j;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
                doc,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings and raw identifiers: r"..", r#".."#, br#".."#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (raw_at, _has_b) = if c == 'b' && i + 1 < n && b[i + 1] == 'r' {
                (i + 2, true)
            } else if c == 'r' {
                (i + 1, false)
            } else {
                (usize::MAX, false)
            };
            if raw_at != usize::MAX && raw_at < n && (b[raw_at] == '"' || b[raw_at] == '#') {
                // Count hashes.
                let mut hashes = 0usize;
                let mut j = raw_at;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    let start_line = line;
                    j += 1;
                    let content_start = j;
                    'scan: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                out.toks.push(Tok {
                                    kind: TokKind::Str,
                                    text: b[content_start..j].iter().collect(),
                                    line: start_line,
                                });
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                } else if hashes == 1 && j < n && is_ident_start(b[j]) && c == 'r' {
                    // Raw identifier r#foo.
                    let start = j;
                    while j < n && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: b[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
                // Fall through: `r` / `b` was an ordinary identifier start.
            }
        }
        // Byte string b"..", byte char b'x'.
        if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
            i += 1;
            // Re-enter the loop logic below with the quote current.
            let q = b[i];
            let (tok, ni, nl) = lex_quoted(&b, i, line, q);
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        if c == '"' {
            let (tok, ni, nl) = lex_quoted(&b, i, line, '"');
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime. A char literal is '<escape-or-char>'
            // (the closing quote appears right after one scalar); otherwise
            // it is a lifetime.
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\''
            };
            if is_char {
                let (tok, ni, nl) = lex_quoted(&b, i, line, '\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    ..tok
                });
                i = ni;
                line = nl;
            } else {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            // Consume digits/suffix chars; a signed exponent (1e-3, 2.5E+7)
            // is part of the number only when everything before the `e` is
            // plain decimal (so hex like 0x1e is never extended over a `-`).
            let eat = |j: &mut usize| {
                while *j < n && (b[*j].is_alphanumeric() || b[*j] == '_') {
                    if (b[*j] == 'e' || b[*j] == 'E')
                        && *j + 1 < n
                        && (b[*j + 1] == '+' || b[*j + 1] == '-')
                        && *j + 2 < n
                        && b[*j + 2].is_ascii_digit()
                        && b[start..*j].iter().all(|&d| d.is_ascii_digit() || d == '.' || d == '_')
                    {
                        *j += 3;
                        continue;
                    }
                    *j += 1;
                }
            };
            eat(&mut j);
            // Fractional part — but never eat a `..` range or a method call
            // like `1.max(x)`.
            if j < n && b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                j += 1;
                eat(&mut j);
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-character operators, longest match first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= n && b[i..i + oc.len()] == oc[..] {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Lex a quoted literal starting at the opening quote `b[i] == q`; returns
/// the token, the index just past the closing quote, and the updated line.
fn lex_quoted(b: &[char], i: usize, mut line: u32, q: char) -> (Tok, usize, u32) {
    let start_line = line;
    let n = b.len();
    let mut j = i + 1;
    let content_start = j;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                line += 1;
                j += 1;
            }
            c if c == q => break,
            _ => j += 1,
        }
    }
    let content: String = b[content_start..j.min(n)].iter().collect();
    (
        Tok {
            kind: TokKind::Str,
            text: content,
            line: start_line,
        },
        (j + 1).min(n),
        line,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_operators() {
        let toks = kinds("let dx = x[i] - x[j];");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert!(toks.contains(&(TokKind::Punct, "-".into())));
        assert!(toks.contains(&(TokKind::Punct, "[".into())));
    }

    #[test]
    fn arrow_is_not_a_minus() {
        let toks = kinds("fn f() -> f64 { 0.0 }");
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(!toks.contains(&(TokKind::Punct, "-".into())));
    }

    #[test]
    fn strings_capture_contents_and_lines() {
        let lexed = lex("let a = \"health.dt\";\nlet b = r#\"raw \"quoted\" text\"#;");
        let strs: Vec<&Tok> = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "health.dt");
        assert_eq!(strs[0].line, 1);
        assert_eq!(strs[1].text, "raw \"quoted\" text");
        assert_eq!(strs[1].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn escaped_char_literal() {
        let toks = kinds(r"let c = '\n';");
        assert!(toks.iter().any(|t| t.0 == TokKind::Char));
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let lexed = lex("/* outer /* inner\n */ still */\nfn f() {}");
        assert_eq!(lexed.toks[0].text, "fn");
        assert_eq!(lexed.toks[0].line, 3);
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let lexed = lex("let x = 1; // sphlint::allow(float-determinism, \"test\")\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("sphlint::allow"));
        assert!(!lexed.comments[0].doc);
    }

    #[test]
    fn doc_comments_are_comments_too() {
        let lexed = lex("/// summary line\nfn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text.trim(), "summary line");
        assert!(lexed.comments[0].doc);
    }

    #[test]
    fn float_exponents_lex_as_one_number() {
        let toks = kinds("let x = 1.0e-12 + 2e+3;");
        let nums: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Num).collect();
        assert_eq!(nums.len(), 2);
        assert_eq!(nums[0].1, "1.0e-12");
        assert_eq!(nums[1].1, "2e+3");
    }

    #[test]
    fn range_does_not_merge_into_float() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Num, "0".into())));
    }

    #[test]
    fn format_placeholder_strings_survive() {
        let lexed = lex("format!(\"sim.rank{rank}.owned\")");
        let s = lexed.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "sim.rank{rank}.owned");
    }
}
