//! A lightweight structural model over the token stream: function extents,
//! conditional regions (with their condition tokens), loop bodies, and
//! test-only regions. This is not a parse tree — it is exactly the amount of
//! structure the contract lints need: "which function am I in", "am I inside
//! a branch, and on what condition", "does test code own this token".

use crate::lexer::{Tok, TokKind};

/// Half-open token-index range `[start, end)`.
pub type Range = (usize, usize);

/// One `fn` item (nested functions included).
#[derive(Debug)]
pub struct Func {
    pub name: String,
    /// Param-list range including the surrounding parentheses.
    pub params: Range,
    /// Body range including the surrounding braces; empty for trait decls.
    pub body: Range,
    /// Marked `#[test]` (or `#[cfg(test)]`) directly.
    pub is_test: bool,
}

/// A conditional region: `body` only executes when the tokens of `cond` held
/// (for `match`, the whole arm block is paired with the scrutinee; for
/// `else`/`else if` chains every upstream condition is paired with every
/// downstream body, since reaching the body *evaluated* those conditions).
#[derive(Debug)]
pub struct Cond {
    pub cond: Range,
    pub body: Range,
}

#[derive(Debug, Default)]
pub struct Model {
    pub funcs: Vec<Func>,
    pub conds: Vec<Cond>,
    /// Bodies of `for`/`while`/`loop` constructs (brace-to-brace).
    pub loops: Vec<Range>,
    /// Regions owned by test code: `#[cfg(test)] mod` bodies, `#[test]` fns.
    pub test_ranges: Vec<Range>,
}

impl Model {
    /// Innermost function whose body contains token `idx`.
    pub fn func_at(&self, idx: usize) -> Option<&Func> {
        self.funcs
            .iter()
            .filter(|f| f.body.0 <= idx && idx < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= idx && idx < e)
    }

    /// Innermost loop body containing token `idx`.
    pub fn loop_at(&self, idx: usize) -> Option<Range> {
        self.loops
            .iter()
            .filter(|&&(s, e)| s <= idx && idx < e)
            .min_by_key(|&&(s, e)| e - s)
            .copied()
    }
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Index of the `}` matching the `{` at `open` (or `end` of stream).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, "(") {
            depth += 1;
        } else if is_punct(t, ")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scan from `from` to the next `{` at zero paren/bracket depth — the opening
/// brace of an `if`/`while`/`match`/`for` body. Conditions with braces inside
/// parentheses (closures, nested calls) are handled by the depth tracking;
/// struct literals at depth 0 are not legal in these positions.
fn find_block_open(toks: &[Tok], from: usize, end: usize) -> Option<usize> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    for (i, t) in toks.iter().enumerate().take(end).skip(from) {
        if is_punct(t, "(") {
            paren += 1;
        } else if is_punct(t, ")") {
            paren -= 1;
        } else if is_punct(t, "[") {
            bracket += 1;
        } else if is_punct(t, "]") {
            bracket -= 1;
        } else if is_punct(t, "{") && paren == 0 && bracket == 0 {
            return Some(i);
        } else if is_punct(t, ";") && paren == 0 && bracket == 0 {
            return None;
        }
    }
    None
}

/// Build the structural model of one lexed file.
pub fn build(toks: &[Tok]) -> Model {
    let mut m = Model::default();
    collect_items(toks, 0, toks.len(), false, &mut m);
    collect_control_flow(toks, 0, toks.len(), &mut m);
    m
}

/// Pass 1: functions, test mods, `#[test]` markers. Linear scan with sticky
/// attribute flags (attributes may stack and be separated by visibility and
/// qualifier keywords before the item keyword lands).
fn collect_items(toks: &[Tok], start: usize, end: usize, in_test: bool, m: &mut Model) {
    let mut i = start;
    let mut attr_test = false;
    let mut attr_cfg_test = false;
    while i < end {
        let t = &toks[i];
        if is_punct(t, "#") && i + 1 < end && is_punct(&toks[i + 1], "[") {
            // Collect the attribute's identifiers.
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < end {
                if is_punct(&toks[j], "[") {
                    depth += 1;
                } else if is_punct(&toks[j], "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].kind == TokKind::Ident {
                    idents.push(&toks[j].text);
                }
                j += 1;
            }
            if idents.contains(&"test") {
                if idents.contains(&"cfg") {
                    attr_cfg_test = true;
                } else {
                    attr_test = true;
                }
            }
            i = j + 1;
            continue;
        }
        if is_ident(t, "fn") {
            let name = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            // Param list: next `(` (generics `<...>` may intervene).
            let mut p = i + 1;
            while p < end && !is_punct(&toks[p], "(") {
                if is_punct(&toks[p], "{") || is_punct(&toks[p], ";") {
                    break;
                }
                p += 1;
            }
            if p >= end || !is_punct(&toks[p], "(") {
                i += 1;
                continue;
            }
            let p_close = match_paren(toks, p);
            // Body: next `{` before a `;` (trait decls have none).
            let mut b = p_close + 1;
            let mut body = (0usize, 0usize);
            while b < end {
                if is_punct(&toks[b], "{") {
                    let b_close = match_brace(toks, b);
                    body = (b, b_close + 1);
                    break;
                }
                if is_punct(&toks[b], ";") {
                    break;
                }
                b += 1;
            }
            let is_test = in_test || attr_test || attr_cfg_test;
            m.funcs.push(Func {
                name,
                params: (p, p_close + 1),
                body,
                is_test,
            });
            if is_test && body.1 > body.0 {
                m.test_ranges.push(body);
            }
            if body.1 > body.0 {
                collect_items(toks, body.0 + 1, body.1 - 1, is_test, m);
                i = body.1;
            } else {
                i = b + 1;
            }
            attr_test = false;
            attr_cfg_test = false;
            continue;
        }
        if is_ident(t, "mod") {
            let mod_test = in_test || attr_cfg_test || attr_test;
            // `mod name { ... }` (skip `mod name;`).
            if let Some(open) = (i + 1..(i + 4).min(end)).find(|&j| is_punct(&toks[j], "{")) {
                let close = match_brace(toks, open);
                if mod_test {
                    m.test_ranges.push((open, close + 1));
                }
                collect_items(toks, open + 1, close, mod_test, m);
                i = close + 1;
            } else {
                i += 1;
            }
            attr_test = false;
            attr_cfg_test = false;
            continue;
        }
        // Any other item keyword consumes the pending attributes.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "struct" | "enum" | "impl" | "trait" | "use" | "static" | "const" | "let" | "type"
            )
        {
            attr_test = false;
            attr_cfg_test = false;
        }
        i += 1;
    }
}

/// Pass 2: conditional regions and loop bodies, over the whole file.
fn collect_control_flow(toks: &[Tok], start: usize, end: usize, m: &mut Model) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if is_ident(t, "if") {
            i = parse_if_chain(toks, i, end, &mut Vec::new(), m);
            continue;
        }
        if is_ident(t, "while") || is_ident(t, "for") || is_ident(t, "match") {
            let kw = t.text.clone();
            let cond_from = if kw == "for" {
                // Condition = the iterated expression, after the `in`.
                let mut j = i + 1;
                let mut paren = 0i64;
                while j < end {
                    if is_punct(&toks[j], "(") {
                        paren += 1;
                    } else if is_punct(&toks[j], ")") {
                        paren -= 1;
                    } else if paren == 0 && (is_ident(&toks[j], "in") || is_punct(&toks[j], "{")) {
                        break;
                    }
                    j += 1;
                }
                j + 1
            } else {
                i + 1
            };
            match find_block_open(toks, cond_from, end) {
                Some(open) => {
                    let close = match_brace(toks, open);
                    let cond = (cond_from.min(open), open);
                    let body = (open, close + 1);
                    // `match x { .. }` used as an expression behaves the same
                    // for our purposes: the block only runs arm code the
                    // scrutinee selects.
                    m.conds.push(Cond { cond, body });
                    if kw != "match" {
                        m.loops.push(body);
                    }
                    collect_control_flow(toks, open + 1, close, m);
                    i = close + 1;
                }
                None => i += 1,
            }
            continue;
        }
        if is_ident(t, "loop") {
            if let Some(open) = find_block_open(toks, i + 1, end) {
                let close = match_brace(toks, open);
                m.loops.push((open, close + 1));
                collect_control_flow(toks, open + 1, close, m);
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Parse `if C1 { B1 } else if C2 { B2 } else { B3 }`, pairing every body
/// with every condition evaluated on the way to it (reaching `B2` evaluated
/// `C1` and `C2`; divergence of either makes `B2`'s execution divergent).
/// Returns the index just past the chain. Recurses into each body.
fn parse_if_chain(toks: &[Tok], if_idx: usize, end: usize, upstream: &mut Vec<Range>, m: &mut Model) -> usize {
    let cond_from = if_idx + 1;
    let Some(open) = find_block_open(toks, cond_from, end) else {
        return if_idx + 1;
    };
    let close = match_brace(toks, open);
    let cond = (cond_from, open);
    let body = (open, close + 1);
    for &up in upstream.iter() {
        m.conds.push(Cond { cond: up, body });
    }
    m.conds.push(Cond { cond, body });
    collect_control_flow(toks, open + 1, close, m);
    let mut i = close + 1;
    if i < end && is_ident(&toks[i], "else") {
        if i + 1 < end && is_ident(&toks[i + 1], "if") {
            upstream.push(cond);
            i = parse_if_chain(toks, i + 1, end, upstream, m);
            upstream.pop();
        } else if let Some(eopen) = (i + 1..(i + 2).min(end)).find(|&j| is_punct(&toks[j], "{")) {
            let eclose = match_brace(toks, eopen);
            let ebody = (eopen, eclose + 1);
            for &up in upstream.iter() {
                m.conds.push(Cond { cond: up, body: ebody });
            }
            m.conds.push(Cond { cond, body: ebody });
            collect_control_flow(toks, eopen + 1, eclose, m);
            i = eclose + 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_and_params_are_found() {
        let l = lex("pub fn alpha(a: u32, out: &mut Vec<u32>) -> u32 { a }\nfn beta() {}");
        let m = build(&l.toks);
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.funcs[0].name, "alpha");
        assert_eq!(m.funcs[1].name, "beta");
    }

    #[test]
    fn cfg_test_mod_marks_test_ranges() {
        let l = lex("fn live() {}\n#[cfg(test)]\nmod tests {\n #[test] fn t() { live(); } }");
        let m = build(&l.toks);
        assert!(!m.funcs.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(m.funcs.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!m.test_ranges.is_empty());
    }

    #[test]
    fn if_else_chain_pairs_every_condition() {
        let l = lex("fn f(rank: usize) { if rank == 0 { a(); } else if b() { c(); } else { d(); } }");
        let m = build(&l.toks);
        // B1 gets C1; B2 gets C1+C2; B3 gets C1+C2 -> 5 cond/body pairs.
        assert_eq!(m.conds.len(), 5);
    }

    #[test]
    fn match_block_is_one_conditional_region() {
        let l = lex("fn f(x: u32) { match x { 0 => a(), _ => b(), } }");
        let m = build(&l.toks);
        assert_eq!(m.conds.len(), 1);
    }

    #[test]
    fn loops_are_recorded_and_for_condition_is_the_iterator() {
        let l = lex("fn f(n: usize) { for i in 0..n { g(i); } while n > 0 { h(); } loop { break; } }");
        let m = build(&l.toks);
        assert_eq!(m.loops.len(), 3);
        assert_eq!(m.conds.len(), 2);
    }

    #[test]
    fn nested_conditionals_are_all_seen() {
        let l = lex("fn f(a: bool, b: bool) { if a { if b { x(); } } }");
        let m = build(&l.toks);
        assert_eq!(m.conds.len(), 2);
    }

    #[test]
    fn innermost_function_wins() {
        let l = lex("fn outer() { fn inner() { marker(); } inner(); }");
        let m = build(&l.toks);
        let idx = l.toks.iter().position(|t| t.text == "marker").unwrap();
        assert_eq!(m.func_at(idx).unwrap().name, "inner");
    }
}
