//! Diagnostics, the `sphlint::allow` escape hatch, and the JSONL report
//! codec (hand-rolled, in the same idiom as the telemetry crate's writers).

use crate::lexer::Comment;

/// Stable lint identifiers — these are the public contract names used in
/// diagnostics, suppressions, fixtures and the README table.
pub const COLLECTIVE_ORDER: &str = "collective-order";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
pub const MIN_IMAGE: &str = "min-image-discipline";
pub const FLOAT_DETERMINISM: &str = "float-determinism";
pub const TELEMETRY_NAMING: &str = "telemetry-naming";
/// Malformed `sphlint::allow` comments are themselves diagnosed (an allow
/// without a reason is a contract violation: the reason *is* the audit trail).
pub const ALLOW_SYNTAX: &str = "allow-syntax";

pub const ALL_LINTS: &[&str] = &[
    COLLECTIVE_ORDER,
    HOT_PATH_ALLOC,
    MIN_IMAGE,
    FLOAT_DETERMINISM,
    TELEMETRY_NAMING,
    ALLOW_SYNTAX,
];

/// One machine-readable finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to the analyzer (workspace-relative in `--workspace`).
    pub file: String,
    /// 1-indexed source line of the offending token.
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
    pub suggestion: String,
}

impl Diagnostic {
    /// `file:line: [lint] message` — the clickable human form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    suggestion: {}",
            self.file, self.line, self.lint, self.message, self.suggestion
        )
    }

    /// One JSONL record, telemetry-codec style (manual escaping, flat keys).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}, \"suggestion\": {}}}",
            json_str(&self.file),
            self.line,
            json_str(self.lint),
            json_str(&self.message),
            json_str(&self.suggestion)
        )
    }
}

/// Minimal JSON string escaping (mirrors `telemetry::json`).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed `// sphlint::allow(<lint-id>, <reason>)`. The suppression covers
/// its own line (trailing comment) and the line directly below (comment on
/// its own line above the construct).
#[derive(Debug, Clone)]
pub struct Suppression {
    pub line: u32,
    pub lint: &'static str,
}

/// Extract suppressions from the file's line comments; malformed allows are
/// reported as `allow-syntax` diagnostics instead.
pub fn parse_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Doc comments describe the syntax (this file does!); only plain
        // `//` comments invoke it.
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("sphlint::allow") else {
            continue;
        };
        let rest = &c.text[at + "sphlint::allow".len()..];
        let parsed = (|| -> Result<&'static str, String> {
            let rest = rest.trim_start();
            let inner = rest.strip_prefix('(').ok_or("expected `sphlint::allow(<lint-id>, <reason>)`")?;
            let close = inner.rfind(')').ok_or("missing closing `)`")?;
            let inner = &inner[..close];
            let (id, reason) = inner
                .split_once(',')
                .ok_or("missing `, <reason>` — every suppression must say why")?;
            let id = id.trim().trim_matches('"');
            let reason = reason.trim().trim_matches('"').trim();
            let known = ALL_LINTS
                .iter()
                .find(|&&l| l == id)
                .ok_or_else(|| format!("unknown lint id `{id}`"))?;
            if reason.is_empty() {
                return Err("empty reason — every suppression must say why".into());
            }
            Ok(known)
        })();
        match parsed {
            Ok(lint) => ok.push(Suppression { line: c.line, lint }),
            Err(why) => bad.push((c.line, why)),
        }
    }
    (ok, bad)
}

/// Drop diagnostics covered by a suppression; returns (kept, n_suppressed).
pub fn apply_suppressions(diags: Vec<Diagnostic>, sups: &[Suppression]) -> (Vec<Diagnostic>, usize) {
    let before = diags.len();
    let kept: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !sups
                .iter()
                .any(|s| s.lint == d.lint && (s.line == d.line || s.line + 1 == d.line))
        })
        .collect();
    let suppressed = before - kept.len();
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sups(src: &str) -> (Vec<Suppression>, Vec<(u32, String)>) {
        parse_suppressions(&lex(src).comments)
    }

    #[test]
    fn wellformed_allow_parses() {
        let (ok, bad) = sups("// sphlint::allow(hot-path-alloc, \"cold-path convenience\")\n");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].lint, HOT_PATH_ALLOC);
        assert!(bad.is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let (ok, bad) = sups("// sphlint::allow(hot-path-alloc)\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn allow_with_empty_reason_is_rejected() {
        let (ok, bad) = sups("// sphlint::allow(hot-path-alloc, \"\")\n");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn allow_with_unknown_lint_is_rejected() {
        let (ok, bad) = sups("// sphlint::allow(made-up-lint, \"because\")\n");
        assert!(ok.is_empty());
        assert!(bad[0].1.contains("unknown lint id"));
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let d = |line| Diagnostic {
            file: "f.rs".into(),
            line,
            lint: FLOAT_DETERMINISM,
            message: String::new(),
            suggestion: String::new(),
        };
        let s = vec![Suppression {
            line: 4,
            lint: FLOAT_DETERMINISM,
        }];
        let (kept, n) = apply_suppressions(vec![d(4), d(5), d(6)], &s);
        assert_eq!(n, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 6);
    }

    #[test]
    fn suppression_is_lint_specific() {
        let d = Diagnostic {
            file: "f.rs".into(),
            line: 4,
            lint: MIN_IMAGE,
            message: String::new(),
            suggestion: String::new(),
        };
        let s = vec![Suppression {
            line: 4,
            lint: FLOAT_DETERMINISM,
        }];
        let (kept, n) = apply_suppressions(vec![d], &s);
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn jsonl_escapes_quotes() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 1,
            lint: TELEMETRY_NAMING,
            message: "literal \"x.y\" bad".into(),
            suggestion: "s".into(),
        };
        assert!(d.to_jsonl().contains("\\\"x.y\\\""));
    }
}
