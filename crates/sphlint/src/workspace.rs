//! The workspace driver: find every first-party `.rs` file, classify it
//! against the contract scopes, lint it, and render the results (human
//! output + optional JSONL report).

use crate::diag::Diagnostic;
use crate::lints::FileClass;
use std::path::{Path, PathBuf};

/// Warm-path modules under the zero-steady-state-allocation contract (the
/// exact surface the `alloc_free_neighbors` counting-allocator test pins).
const WARM_PATH: &[&str] = &[
    "crates/sphsim/src/kernels.rs",
    "crates/sphsim/src/workspace.rs",
    "crates/sphsim/src/octree.rs",
    "crates/sphsim/src/celllist.rs",
    "crates/sphsim/src/physics/neighbors.rs",
];

/// Pair-kernel modules under the minimum-image contract. (`gravity.rs` is
/// deliberately absent: Barnes–Hut runs on gathered global coordinates in
/// open space.)
const PAIR_KERNEL: &[&str] = &[
    "crates/sphsim/src/physics/density.rs",
    "crates/sphsim/src/physics/gradh.rs",
    "crates/sphsim/src/physics/iad.rs",
    "crates/sphsim/src/physics/momentum.rs",
    "crates/sphsim/src/physics/neighbors.rs",
    "crates/sphsim/src/octree.rs",
    "crates/sphsim/src/celllist.rs",
    "crates/sphsim/src/domain.rs",
];

/// Directories never linted: external shims, build output, VCS, and the
/// fixture corpus (intentionally-bad snippets).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "experiments_output", "fixtures"];

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    FileClass {
        warm_path: WARM_PATH.iter().any(|w| rel.ends_with(w)),
        pair_kernel: PAIR_KERNEL.iter().any(|p| rel.ends_with(p)),
        test_file: rel.contains("/tests/") || rel.contains("/benches/"),
    }
}

/// Result of linting a tree.
pub struct Run {
    pub files_checked: usize,
    pub diagnostics: Vec<Diagnostic>,
    pub suppressed: usize,
    /// Files that could not be read (reported, non-fatal).
    pub io_errors: Vec<String>,
}

/// Lint every first-party `.rs` file under `root`.
pub fn run_workspace(root: &Path) -> Run {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut run = Run {
        files_checked: 0,
        diagnostics: Vec::new(),
        suppressed: 0,
        io_errors: Vec::new(),
    };
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(&path) {
            Ok(src) => {
                let (diags, suppressed) = crate::check_source_counted(&rel, &src, classify(&rel));
                run.files_checked += 1;
                run.suppressed += suppressed;
                run.diagnostics.extend(diags);
            }
            Err(e) => run.io_errors.push(format!("{rel}: {e}")),
        }
    }
    run
}

/// Lint an explicit list of files (scratch fixtures, pre-commit hooks).
/// Classification still derives from each path, so a scratch file can opt
/// into a scope by mirroring its layout (or by living anywhere for the
/// all-files lints).
pub fn run_files(paths: &[PathBuf]) -> Run {
    let mut run = Run {
        files_checked: 0,
        diagnostics: Vec::new(),
        suppressed: 0,
        io_errors: Vec::new(),
    };
    for path in paths {
        let rel = path.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(src) => {
                let (diags, suppressed) = crate::check_source_counted(&rel, &src, classify(&rel));
                run.files_checked += 1;
                run.suppressed += suppressed;
                run.diagnostics.extend(diags);
            }
            Err(e) => run.io_errors.push(format!("{rel}: {e}")),
        }
    }
    run
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Write the machine-readable report: one JSONL record per diagnostic
/// (telemetry-codec style), empty file when clean.
pub fn write_report(path: &Path, diags: &[Diagnostic]) -> std::io::Result<()> {
    let mut body = String::new();
    for d in diags {
        body.push_str(&d.to_jsonl());
        body.push('\n');
    }
    std::fs::write(path, body)
}
