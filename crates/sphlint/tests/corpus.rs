//! Fixture corpus: every lint has a known-bad snippet that must trip
//! *exactly* its diagnostics (lint id + line) and a known-clean snippet that
//! must pass, plus suppression fixtures proving the escape hatch works and
//! that a reason is mandatory. Finally, the real workspace must be clean —
//! the same gate CI enforces.

use sphlint::{check_source, check_source_counted, FileClass};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn hits(name: &str, class: FileClass) -> Vec<(&'static str, u32)> {
    check_source(name, &fixture(name), class)
        .into_iter()
        .map(|d| (d.lint, d.line))
        .collect()
}

const WARM: FileClass = FileClass {
    warm_path: true,
    pair_kernel: false,
    test_file: false,
};
const PAIR: FileClass = FileClass {
    warm_path: false,
    pair_kernel: true,
    test_file: false,
};
const PLAIN: FileClass = FileClass {
    warm_path: false,
    pair_kernel: false,
    test_file: false,
};
/// `celllist.rs` is in both scopes: warm (alloc-free sweep) and pair kernel
/// (minimum-image gather).
const CELL: FileClass = FileClass {
    warm_path: true,
    pair_kernel: true,
    test_file: false,
};

#[test]
fn collective_order_bad_trips_exactly() {
    assert_eq!(
        hits("collective_order/bad.rs", PLAIN),
        vec![
            ("collective-order", 5),  // gather inside `if rank == 0`
            ("collective-order", 11), // barrier after divergent `continue`
            ("collective-order", 16), // allreduce after divergent `return`
        ]
    );
}

#[test]
fn collective_order_clean_passes() {
    assert_eq!(hits("collective_order/clean.rs", PLAIN), vec![]);
}

#[test]
fn collective_order_nonblocking_bad_trips_exactly() {
    assert_eq!(
        hits("collective_order/nonblocking_bad.rs", PLAIN),
        vec![
            ("collective-order", 4),  // isend still in flight at allreduce_sum
            ("collective-order", 11), // irecv still in flight at barrier
        ]
    );
}

#[test]
fn collective_order_nonblocking_clean_passes() {
    assert_eq!(hits("collective_order/nonblocking_clean.rs", PLAIN), vec![]);
}

#[test]
fn hot_path_alloc_bad_trips_exactly() {
    assert_eq!(
        hits("hot_path_alloc/bad.rs", WARM),
        vec![
            ("hot-path-alloc", 4),  // Vec::new()
            ("hot-path-alloc", 6),  // push into a non-retained local
            ("hot-path-alloc", 8),  // format!
            ("hot-path-alloc", 9),  // .to_vec()
            ("hot-path-alloc", 10), // .collect()
        ]
    );
}

#[test]
fn hot_path_alloc_clean_passes() {
    assert_eq!(hits("hot_path_alloc/clean.rs", WARM), vec![]);
}

#[test]
fn hot_path_alloc_is_scoped_to_warm_files() {
    // The same bad source outside a warm-path module is not this lint's
    // business (dynamic behaviour there is unconstrained).
    assert_eq!(hits("hot_path_alloc/bad.rs", PLAIN), vec![]);
}

#[test]
fn celllist_bad_trips_both_scopes_exactly() {
    // A cell-list module carries both contracts at once: the grid sweep must
    // not allocate, and the stencil gather must respect minimum image.
    assert_eq!(
        hits("celllist/bad.rs", CELL),
        vec![
            ("hot-path-alloc", 5),        // Vec::new() in the rebuild
            ("hot-path-alloc", 7),        // push into a non-retained local
            ("min-image-discipline", 15), // raw x[i] - x[j] in the gather
            ("min-image-discipline", 16), // raw y[i] - y[j] in the gather
        ]
    );
}

#[test]
fn celllist_clean_passes() {
    assert_eq!(hits("celllist/clean.rs", CELL), vec![]);
}

#[test]
fn min_image_bad_trips_exactly() {
    assert_eq!(
        hits("min_image/bad.rs", PAIR),
        vec![
            ("min-image-discipline", 6),  // x[i] - x[j]
            ("min-image-discipline", 7),  // y[i] - y[j]
            ("min-image-discipline", 14), // p.x[i] - p.x[j]
        ]
    );
}

#[test]
fn min_image_clean_passes() {
    assert_eq!(hits("min_image/clean.rs", PAIR), vec![]);
}

#[test]
fn float_determinism_bad_trips_exactly() {
    assert_eq!(
        hits("float_determinism/bad.rs", PLAIN),
        vec![
            ("float-determinism", 7),  // partial_cmp in live code
            ("float-determinism", 16), // SystemTime::now in a test
            ("float-determinism", 17), // thread_rng in a test
            ("float-determinism", 18), // rand::random in a test
        ]
    );
}

#[test]
fn float_determinism_clean_passes() {
    assert_eq!(hits("float_determinism/clean.rs", PLAIN), vec![]);
}

#[test]
fn telemetry_naming_bad_trips_exactly() {
    assert_eq!(
        hits("telemetry_naming/bad.rs", PLAIN),
        vec![
            ("telemetry-naming", 4),  // comm.gather.count: bad field
            ("telemetry-naming", 5),  // undocumented category "memory"
            ("telemetry-naming", 6),  // wall.seconds: undocumented root
            ("telemetry-naming", 10), // sim.rank{rank}.owned.bytes: too deep
        ]
    );
}

#[test]
fn telemetry_naming_clean_passes() {
    assert_eq!(hits("telemetry_naming/clean.rs", PLAIN), vec![]);
}

#[test]
fn allow_with_reason_suppresses() {
    let (diags, suppressed) = check_source_counted("allow/suppressed.rs", &fixture("allow/suppressed.rs"), PLAIN);
    assert_eq!(diags, vec![]);
    assert_eq!(suppressed, 1);
}

#[test]
fn allow_without_reason_is_diagnosed_and_does_not_suppress() {
    let (diags, suppressed) =
        check_source_counted("allow/missing_reason.rs", &fixture("allow/missing_reason.rs"), PLAIN);
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.lint, d.line)).collect();
    assert_eq!(got, vec![("allow-syntax", 7), ("float-determinism", 8)]);
    assert_eq!(suppressed, 0);
}

#[test]
fn driver_flags_a_rank_divergent_scratch_file() {
    // End-to-end through the CLI driver path (`run_files` + path
    // classification): a scratch file outside any test tree gets the full
    // lint set, and the divergent collective is caught.
    let dir = std::env::temp_dir().join(format!("sphlint-scratch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scratch.rs");
    std::fs::write(&path, fixture("collective_order/bad.rs")).unwrap();
    let run = sphlint::workspace::run_files(std::slice::from_ref(&path));
    let got: Vec<(&str, u32)> = run.diagnostics.iter().map(|d| (d.lint, d.line)).collect();
    assert_eq!(
        got,
        vec![
            ("collective-order", 5),
            ("collective-order", 11),
            ("collective-order", 16),
        ]
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn workspace_path_classification() {
    use sphlint::workspace::classify;
    assert!(classify("crates/sphsim/src/octree.rs").warm_path);
    assert!(classify("crates/sphsim/src/octree.rs").pair_kernel);
    assert!(classify("crates/sphsim/src/physics/density.rs").pair_kernel);
    assert!(!classify("crates/sphsim/src/physics/density.rs").warm_path);
    assert!(classify("crates/sphsim/src/celllist.rs").warm_path);
    assert!(classify("crates/sphsim/src/celllist.rs").pair_kernel);
    assert!(!classify("crates/sphsim/src/physics/gravity.rs").pair_kernel);
    assert!(classify("crates/sphsim/tests/periodic_invariants.rs").test_file);
    assert!(classify("crates/bench/benches/step_throughput.rs").test_file);
    assert!(!classify("crates/autotune/src/governor.rs").test_file);
}

#[test]
fn workspace_is_clean() {
    // The acceptance gate: the real tree has zero unsuppressed diagnostics.
    // This is the same invariant the CI `static-analysis` job enforces.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = sphlint::workspace::run_workspace(&root);
    assert!(run.files_checked > 100, "only {} files seen", run.files_checked);
    let rendered: Vec<String> = run.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        run.diagnostics.is_empty(),
        "workspace has sphlint diagnostics:\n{}",
        rendered.join("\n")
    );
}
