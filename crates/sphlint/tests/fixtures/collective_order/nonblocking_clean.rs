//! Scratch fixture: every posted handle is drained before the next
//! collective, or escapes to the caller.

pub fn overlap(comm: &Comm, dest: usize, src: usize, counts: Vec<f64>) {
    let send = comm.isend(dest, counts);
    let recv = comm.irecv(src);
    let _ = recv.wait(comm);
    send.wait().expect("peer died");
    let _ = comm.allreduce_sum(1.0);
}

pub fn post(comm: &Comm, dest: usize) -> SendHandle {
    // The handle escapes: completion is the caller's contract, and no
    // collective of *this* function can cross it.
    comm.isend(dest, 1.0f64)
}
