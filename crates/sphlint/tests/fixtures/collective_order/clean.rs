//! Scratch fixture: every rank issues the same collective sequence.

pub fn exchange(comm: &Comm, rank: usize, total: usize, n_ranks: usize) {
    // `total` is the *allreduced* particle count: identical on every rank,
    // so this early exit is a collective decision.
    if total == 0 {
        return;
    }
    let _ = comm.gather(&[1.0f64]);
    for _ in 0..n_ranks {
        comm.barrier();
    }
    if rank == 0 {
        // Divergent branch, but no collective inside and no early exit.
        let _ = rank + 1;
    }
    let keep = [true];
    // `ParticleSet::gather` is compaction, not a Comm collective.
    let _ = particles.gather(&keep);
}
