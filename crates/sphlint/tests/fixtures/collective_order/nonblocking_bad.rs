//! Scratch fixture: nonblocking handles still in flight when a collective runs.

pub fn overlap(comm: &Comm, dest: usize, counts: Vec<f64>) {
    let send = comm.isend(dest, counts);
    let total = comm.allreduce_sum(1.0);
    send.wait().expect("peer died");
    let _ = total;
}

pub fn drain(comm: &Comm, src: usize) {
    let recv = comm.irecv(src);
    comm.barrier();
    let _ = recv.wait(comm);
}
