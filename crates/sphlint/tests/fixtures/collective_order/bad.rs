//! Scratch fixture: collectives under rank-divergent control flow.

pub fn exchange(comm: &Comm, rank: usize, n_owned: usize) {
    if rank == 0 {
        let _ = comm.gather(&[1.0f64]);
    }
    for _ in 0..3 {
        if n_owned == 0 {
            continue;
        }
        comm.barrier();
    }
    if rank > 2 {
        return;
    }
    let _ = comm.allreduce_sum(1.0);
}
