//! Scratch fixture: total float orderings and replayable fixtures.

pub fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn fixture() {
        // Elapsed-time measurement is not fixture data: allowed.
        let t0 = Instant::now();
        // Explicitly seeded generators are replayable: allowed.
        let rng = SmallRng::seed_from_u64(42);
        let _ = (t0, rng);
    }
}
