//! Scratch fixture: partial float orderings and nondeterministic fixtures.

pub fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture() {
        let stamp = std::time::SystemTime::now();
        let mut rng = thread_rng();
        let noise: f64 = rand::random();
        let _ = (stamp, rng, noise);
    }
}
