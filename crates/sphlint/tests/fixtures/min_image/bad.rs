//! Scratch fixture: raw coordinate-pair subtraction in a pair kernel.

pub fn density_pass(x: &[f64], y: &[f64], pairs: &[(usize, usize)]) -> f64 {
    let mut acc = 0.0;
    for &(i, j) in pairs {
        let dx = x[i] - x[j];
        let dy = y[i] - y[j];
        acc += dx * dx + dy * dy;
    }
    acc
}

pub fn worst_pair(p: &Particles, i: usize, j: usize) -> f64 {
    p.x[i] - p.x[j]
}
