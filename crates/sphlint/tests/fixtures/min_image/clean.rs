//! Scratch fixture: pair kernels that respect the minimum-image convention.

pub fn density_pass(x: &[f64], y: &[f64], pairs: &[(usize, usize)], mi: &MinImage) -> f64 {
    let mut acc = 0.0;
    for &(i, j) in pairs {
        let (dx, dy) = mi.map(x[i] - x[j], y[i] - y[j]);
        acc += dx * dx + dy * dy;
    }
    acc
}

pub fn recenter(x: &[f64], cx: f64, i: usize) -> f64 {
    // Subtraction against a scalar is not a pair separation.
    x[i] - cx
}
