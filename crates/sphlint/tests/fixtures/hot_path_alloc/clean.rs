//! Scratch fixture: the workspace reuse idiom (clear + reserve + fill into
//! retained storage) allocates only in cold constructors.

pub struct Scratch {
    rows: Vec<u32>,
}

impl Scratch {
    pub fn new(n: usize) -> Self {
        // Cold constructor: runs once, allocation is fine here.
        let mut rows = Vec::with_capacity(n);
        rows.push(0);
        Self { rows }
    }

    pub fn rebuild(&mut self, counts: &[u32], out: &mut Vec<u32>) {
        self.rows.clear();
        self.rows.reserve(counts.len());
        out.clear();
        for &c in counts {
            self.rows.push(c);
            out.push(c);
        }
    }
}
