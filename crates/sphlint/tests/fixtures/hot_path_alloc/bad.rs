//! Scratch fixture: fresh allocation in a warm-path module.

pub fn rebuild(counts: &[u32], n: usize) -> usize {
    let mut tmp = Vec::new();
    for i in 0..n {
        tmp.push(i as u32);
    }
    let label = format!("n={n}");
    let copy = counts.to_vec();
    let doubled: Vec<u32> = counts.iter().map(|c| c * 2).collect();
    tmp.len() + label.len() + copy.len() + doubled.len()
}
