//! Scratch fixture: a suppression without a reason is itself diagnosed,
//! and the underlying diagnostic is NOT suppressed.

pub fn pick(rows: &[(u32, u32)]) -> usize {
    rows.iter()
        .enumerate()
        // sphlint::allow(float-determinism)
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
