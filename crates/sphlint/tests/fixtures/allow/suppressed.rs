//! Scratch fixture: a well-formed suppression with its mandatory reason.

pub fn pick(rows: &[(u32, u32)]) -> usize {
    rows.iter()
        .enumerate()
        // sphlint::allow(float-determinism, comparing integer tuple fields, no floats involved)
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
