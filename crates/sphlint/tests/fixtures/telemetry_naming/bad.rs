//! Scratch fixture: metric names off the documented grammar.

pub fn emit(t: &Telemetry) {
    t.counter("comm.gather.count", 1);
    t.gauge("memory", "rss_bytes", 1.0);
    t.histogram("step", "wall.seconds", 0.1);
}

pub fn name_for(rank: usize) -> String {
    format!("sim.rank{rank}.owned.bytes")
}
