//! Scratch fixture: every name follows the documented grammar.

pub fn emit(t: &Telemetry, rank: usize) {
    t.counter("comm.gather.calls", 1);
    t.gauge("health", "health.energy_drift", 0.0);
    t.counter_sample("comm", "comm.alltoall.bytes", 1024);
    t.instant("autotune", "{stage}.propose");
    let name = format!("sim.rank{rank}.owned");
    t.gauge("sim", &name, 1.0);
    t.counter("pmt.read_errors", 1);
    t.counter("sim.autotune.events", 1);
    t.histogram("health", "health.dt_bins", 2.0);
    t.counter("sim.timestep.events", 1);
    t.instant("sim", "timestep");
}
