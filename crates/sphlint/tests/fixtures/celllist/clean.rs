//! Scratch fixture: the cell-list idiom done right — retained grid storage
//! grown in place, and a stencil gather that maps every pair separation
//! through the minimum-image convention.

pub struct Grid {
    cell_of: Vec<u32>,
    starts: Vec<u32>,
}

impl Grid {
    pub fn new() -> Self {
        // Cold constructor: runs once, allocation is fine here.
        Self {
            cell_of: Vec::new(),
            starts: Vec::new(),
        }
    }

    pub fn rebuild(&mut self, x: &[f64], g: usize) {
        self.cell_of.clear();
        self.cell_of.reserve(x.len());
        self.starts.resize(g + 1, 0);
        for &v in x {
            self.cell_of.push((v * g as f64) as u32);
        }
    }
}

pub fn gather_cell(x: &[f64], y: &[f64], i: usize, slots: &[usize], mi: &MinImage, row: &mut Vec<u32>) -> f64 {
    let mut acc = 0.0;
    for &j in slots {
        let (dx, dy) = mi.map(x[i] - x[j], y[i] - y[j]);
        row.push(j as u32);
        acc += dx * dx + dy * dy;
    }
    acc
}
