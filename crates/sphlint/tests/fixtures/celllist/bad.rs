//! Scratch fixture: a cell-list rebuild that allocates per call and a
//! stencil gather that subtracts raw coordinates.

pub fn rebuild_grid(x: &[f64], g: usize) -> Vec<u32> {
    let mut cell_of = Vec::new();
    for &v in x {
        cell_of.push((v * g as f64) as u32);
    }
    cell_of
}

pub fn gather_cell(x: &[f64], y: &[f64], i: usize, slots: &[usize]) -> f64 {
    let mut acc = 0.0;
    for &j in slots {
        let dx = x[i] - x[j];
        let dy = y[i] - y[j];
        acc += dx * dx + dy * dy;
    }
    acc
}
