//! Search strategies over the DVFS frequency grid.
//!
//! All strategies speak the same incremental protocol so the governor can
//! drive them one stage execution at a time:
//!
//! 1. [`SearchStrategy::propose`] — the next frequency to run at (`None` once
//!    converged);
//! 2. the caller runs the workload at that frequency and measures it;
//! 3. [`SearchStrategy::observe`] — feed back the objective score.
//!
//! Every proposal is snapped onto the device's `f_step_hz` grid and clamped
//! into `[f_min_hz, f_max_hz]`; scores of already-visited grid points are
//! reused from an internal cache, so no strategy ever pays for the same
//! operating point twice. The paper's EDP-vs-frequency curves (Figure 4) are
//! unimodal, which is what [`GoldenSection`] exploits; [`HillClimb`] only
//! assumes local improvement and is the default for noisy per-stage tuning.

use hwmodel::dvfs::DvfsModel;
use std::collections::BTreeMap;

/// Relative score tolerance below which two observations count as equal.
const SCORE_EPS: f64 = 1e-12;

/// Strict improvement test, sign-correct for negative and zero scores: a
/// candidate improves on `base` only when it is lower by more than the
/// relative tolerance (an equal score is never an improvement).
fn improves(score: f64, base: f64) -> bool {
    score < base - SCORE_EPS * base.abs()
}

/// An incremental minimiser over a DVFS frequency grid.
pub trait SearchStrategy: Send {
    /// Next frequency (Hz, on-grid) to evaluate, or `None` once converged.
    ///
    /// Repeated calls without an intervening [`SearchStrategy::observe`]
    /// return the same pending proposal.
    fn propose(&mut self) -> Option<f64>;

    /// Report the objective score measured at `f_hz` (lower is better).
    fn observe(&mut self, f_hz: f64, score: f64);

    /// Best (lowest-score) frequency seen so far.
    fn best_frequency(&self) -> Option<f64>;

    /// Score of the best frequency seen so far.
    fn best_score(&self) -> Option<f64>;

    /// True once the strategy has nothing further to evaluate.
    fn is_converged(&self) -> bool;

    /// Number of externally evaluated (non-cached) observations so far.
    fn evaluations(&self) -> usize;
}

fn grid_key(f_hz: f64) -> u64 {
    f_hz.round() as u64
}

/// Shared bookkeeping: score cache keyed by grid frequency plus the running
/// minimum.
#[derive(Debug, Default)]
struct EvalCache {
    scores: BTreeMap<u64, f64>,
    best: Option<(f64, f64)>, // (score, frequency)
    evaluations: usize,
}

impl EvalCache {
    fn get(&self, f_hz: f64) -> Option<f64> {
        self.scores.get(&grid_key(f_hz)).copied()
    }

    fn insert(&mut self, f_hz: f64, score: f64) {
        self.evaluations += 1;
        self.scores.insert(grid_key(f_hz), score);
        match self.best {
            Some((s, _)) if s <= score => {}
            _ => self.best = Some((score, f_hz)),
        }
    }

    fn best_frequency(&self) -> Option<f64> {
        self.best.map(|(_, f)| f)
    }

    fn best_score(&self) -> Option<f64> {
        self.best.map(|(s, _)| s)
    }
}

// ---------------------------------------------------------------------------
// Exhaustive sweep
// ---------------------------------------------------------------------------

/// Visit every grid point between two bounds — the paper's offline sweep, and
/// the oracle the online strategies are validated against.
pub struct ExhaustiveSweep {
    grid: Vec<f64>,
    next: usize,
    pending: Option<f64>,
    cache: EvalCache,
}

impl ExhaustiveSweep {
    /// Sweep the full supported range of `model`.
    pub fn new(model: &DvfsModel) -> Self {
        Self::over(model, model.f_min_hz, model.f_max_hz)
    }

    /// Sweep the grid between `lo_hz` and `hi_hz` (clamped, inclusive).
    pub fn over(model: &DvfsModel, lo_hz: f64, hi_hz: f64) -> Self {
        Self {
            grid: model.supported_range(lo_hz, hi_hz),
            next: 0,
            pending: None,
            cache: EvalCache::default(),
        }
    }

    /// Number of grid points the sweep will visit.
    pub fn grid_len(&self) -> usize {
        self.grid.len()
    }
}

impl SearchStrategy for ExhaustiveSweep {
    fn propose(&mut self) -> Option<f64> {
        if let Some(pending) = self.pending {
            return Some(pending);
        }
        while self.next < self.grid.len() {
            let f = self.grid[self.next];
            if self.cache.get(f).is_none() {
                self.pending = Some(f);
                return Some(f);
            }
            self.next += 1;
        }
        None
    }

    fn observe(&mut self, f_hz: f64, score: f64) {
        self.cache.insert(f_hz, score);
        if self.pending.map(grid_key) == Some(grid_key(f_hz)) {
            self.pending = None;
            self.next += 1;
        }
    }

    fn best_frequency(&self) -> Option<f64> {
        self.cache.best_frequency()
    }

    fn best_score(&self) -> Option<f64> {
        self.cache.best_score()
    }

    fn is_converged(&self) -> bool {
        self.pending.is_none() && self.next >= self.grid.len()
    }

    fn evaluations(&self) -> usize {
        self.cache.evaluations
    }
}

// ---------------------------------------------------------------------------
// Golden-section search
// ---------------------------------------------------------------------------

/// Golden-section search over the frequency range.
///
/// Assumes the objective is unimodal in frequency (true of the paper's EDP
/// curves). Converges to within one `f_step_hz` of the grid minimum in
/// `O(log((f_max − f_min)/f_step))` evaluations instead of the sweep's
/// `O((f_max − f_min)/f_step)`.
pub struct GoldenSection {
    model: DvfsModel,
    a: f64,
    b: f64,
    x1: f64,
    x2: f64,
    s1: Option<f64>,
    s2: Option<f64>,
    phase: Phase,
    pending: Option<(Probe, f64)>,
    cache: EvalCache,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    /// Shrinking the bracket with golden-section probes.
    Bracketing,
    /// Bracket is down to grid resolution: score every remaining grid point.
    Scan(Vec<f64>),
    /// Nothing left to evaluate.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Probe {
    X1,
    X2,
    Scan,
}

/// 1/φ — the golden-section interior-point ratio.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

impl GoldenSection {
    /// Search the full supported range of `model`.
    pub fn new(model: &DvfsModel) -> Self {
        let a = model.f_min_hz;
        let b = model.f_max_hz;
        let span = b - a;
        Self {
            model: model.clone(),
            a,
            b,
            x1: b - INV_PHI * span,
            x2: a + INV_PHI * span,
            s1: None,
            s2: None,
            phase: Phase::Bracketing,
            pending: None,
            cache: EvalCache::default(),
        }
    }

    fn snap(&self, f: f64) -> f64 {
        self.model.clamp(f)
    }

    /// Grid snapping stops being informative once the interval is about one
    /// step wide or both interior probes land on the same grid point; the
    /// bracket still contains the minimum, so finish by scanning its few
    /// remaining grid points exhaustively.
    fn bracket_exhausted(&self) -> bool {
        self.b - self.a <= self.model.f_step_hz.max(f64::EPSILON)
            || grid_key(self.snap(self.x1)) == grid_key(self.snap(self.x2))
    }
}

impl SearchStrategy for GoldenSection {
    fn propose(&mut self) -> Option<f64> {
        if let Some((_, f)) = self.pending {
            return Some(f);
        }
        loop {
            match &self.phase {
                Phase::Done => return None,
                Phase::Scan(points) => match points.iter().copied().find(|&f| self.cache.get(f).is_none()) {
                    Some(f) => {
                        self.pending = Some((Probe::Scan, f));
                        return Some(f);
                    }
                    None => {
                        self.phase = Phase::Done;
                        return None;
                    }
                },
                Phase::Bracketing => {}
            }
            if self.bracket_exhausted() {
                self.phase = Phase::Scan(self.model.supported_range(self.a, self.b));
                continue;
            }
            if self.s1.is_none() {
                let f = self.snap(self.x1);
                match self.cache.get(f) {
                    Some(score) => self.s1 = Some(score),
                    None => {
                        self.pending = Some((Probe::X1, f));
                        return Some(f);
                    }
                }
                continue;
            }
            if self.s2.is_none() {
                let f = self.snap(self.x2);
                match self.cache.get(f) {
                    Some(score) => self.s2 = Some(score),
                    None => {
                        self.pending = Some((Probe::X2, f));
                        return Some(f);
                    }
                }
                continue;
            }
            // Both probes scored: shrink the bracket toward the lower one.
            let (s1, s2) = (self.s1.unwrap(), self.s2.unwrap());
            let span;
            if s1 <= s2 {
                self.b = self.x2;
                span = self.b - self.a;
                self.x2 = self.x1;
                self.s2 = self.s1;
                self.x1 = self.b - INV_PHI * span;
                self.s1 = None;
            } else {
                self.a = self.x1;
                span = self.b - self.a;
                self.x1 = self.x2;
                self.s1 = self.s2;
                self.x2 = self.a + INV_PHI * span;
                self.s2 = None;
            }
        }
    }

    fn observe(&mut self, f_hz: f64, score: f64) {
        self.cache.insert(f_hz, score);
        if let Some((probe, pending_f)) = self.pending {
            if grid_key(pending_f) == grid_key(f_hz) {
                self.pending = None;
                match probe {
                    Probe::X1 => self.s1 = Some(score),
                    Probe::X2 => self.s2 = Some(score),
                    Probe::Scan => {}
                }
            }
        }
    }

    fn best_frequency(&self) -> Option<f64> {
        self.cache.best_frequency()
    }

    fn best_score(&self) -> Option<f64> {
        self.cache.best_score()
    }

    fn is_converged(&self) -> bool {
        self.pending.is_none()
            && match &self.phase {
                Phase::Done => true,
                Phase::Scan(points) => points.iter().all(|&f| self.cache.get(f).is_some()),
                Phase::Bracketing => false,
            }
    }

    fn evaluations(&self) -> usize {
        self.cache.evaluations
    }
}

// ---------------------------------------------------------------------------
// Hill climbing
// ---------------------------------------------------------------------------

/// Step-halving hill-climber.
///
/// Starts from a given frequency (by default the nominal maximum — the safe
/// operating point), walks in multiples of `f_step_hz` toward lower scores,
/// reverses direction when blocked, and halves the step until it is pinned to
/// within one grid step of a local minimum. On the paper's unimodal per-stage
/// EDP curves the local minimum is the global one, and different stages
/// (compute-bound `MomentumEnergy` vs memory-bound `DomainDecompAndSync`)
/// converge to visibly different frequencies.
pub struct HillClimb {
    model: DvfsModel,
    base_f: f64,
    base_score: Option<f64>,
    step_steps: f64,
    dir: f64,
    reversed_once: bool,
    pending: Option<f64>,
    converged: bool,
    cache: EvalCache,
}

impl HillClimb {
    /// Default initial stride: 8 grid steps (120 MHz on an A100 grid).
    pub const DEFAULT_INITIAL_STEPS: f64 = 8.0;

    /// Climb from the model's maximum frequency downward.
    pub fn new(model: &DvfsModel) -> Self {
        Self::from(model, model.f_max_hz, Self::DEFAULT_INITIAL_STEPS)
    }

    /// Climb from an explicit starting frequency with an initial stride of
    /// `initial_steps` grid steps.
    pub fn from(model: &DvfsModel, start_hz: f64, initial_steps: f64) -> Self {
        assert!(initial_steps >= 1.0, "initial stride must be at least one grid step");
        Self {
            model: model.clone(),
            base_f: model.clamp(start_hz),
            base_score: None,
            step_steps: initial_steps.floor(),
            // Starting at the top of the range, the only useful direction is
            // down; `propose` reverses automatically when blocked.
            dir: -1.0,
            reversed_once: false,
            pending: None,
            converged: false,
            cache: EvalCache::default(),
        }
    }

    fn candidate(&self) -> f64 {
        self.model
            .clamp(self.base_f + self.dir * self.step_steps * self.model.f_step_hz)
    }

    /// The candidate move was rejected (no improvement, or clamped onto the
    /// base itself): reverse once, then shrink the stride.
    fn reject(&mut self) {
        if self.reversed_once {
            self.reversed_once = false;
            self.step_steps = (self.step_steps / 2.0).floor();
            if self.step_steps < 1.0 {
                self.converged = true;
            }
        } else {
            self.dir = -self.dir;
            self.reversed_once = true;
        }
    }

    fn accept(&mut self, f: f64, score: f64) {
        self.base_f = f;
        self.base_score = Some(score);
        self.reversed_once = false;
    }
}

impl SearchStrategy for HillClimb {
    fn propose(&mut self) -> Option<f64> {
        if let Some(pending) = self.pending {
            return Some(pending);
        }
        loop {
            if self.converged {
                return None;
            }
            if self.base_score.is_none() {
                match self.cache.get(self.base_f) {
                    Some(score) => self.base_score = Some(score),
                    None => {
                        self.pending = Some(self.base_f);
                        return Some(self.base_f);
                    }
                }
                continue;
            }
            let cand = self.candidate();
            if grid_key(cand) == grid_key(self.base_f) {
                self.reject();
                continue;
            }
            match self.cache.get(cand) {
                Some(score) => {
                    if improves(score, self.base_score.unwrap()) {
                        self.accept(cand, score);
                    } else {
                        self.reject();
                    }
                }
                None => {
                    self.pending = Some(cand);
                    return Some(cand);
                }
            }
        }
    }

    fn observe(&mut self, f_hz: f64, score: f64) {
        // Only record the observation; the next `propose` call reaches the
        // accept/reject decision through its cache path, keeping the decision
        // rule in one place.
        self.cache.insert(f_hz, score);
        if self.pending.map(grid_key) == Some(grid_key(f_hz)) {
            self.pending = None;
        }
    }

    fn best_frequency(&self) -> Option<f64> {
        self.cache.best_frequency()
    }

    fn best_score(&self) -> Option<f64> {
        self.cache.best_score()
    }

    fn is_converged(&self) -> bool {
        self.converged
    }

    fn evaluations(&self) -> usize {
        self.cache.evaluations
    }
}

// ---------------------------------------------------------------------------
// Offline driver
// ---------------------------------------------------------------------------

/// Result of driving a strategy to convergence with [`tune`].
#[derive(Clone, Debug, PartialEq)]
pub struct TuneResult {
    /// Best frequency found, in Hz.
    pub best_frequency_hz: f64,
    /// Objective score at the best frequency.
    pub best_score: f64,
    /// Number of (frequency, score) evaluations spent.
    pub evaluations: usize,
}

/// Drive `strategy` to convergence against an evaluation oracle.
///
/// `evaluate` runs the workload at the proposed frequency and returns the
/// objective score (lower is better). `max_evaluations` bounds runaway loops
/// on non-converging inputs.
pub fn tune(
    strategy: &mut dyn SearchStrategy,
    mut evaluate: impl FnMut(f64) -> f64,
    max_evaluations: usize,
) -> Option<TuneResult> {
    let mut spent = 0;
    while let Some(f) = strategy.propose() {
        if spent >= max_evaluations {
            break;
        }
        let score = evaluate(f);
        strategy.observe(f, score);
        spent += 1;
    }
    Some(TuneResult {
        best_frequency_hz: strategy.best_frequency()?,
        best_score: strategy.best_score()?,
        evaluations: strategy.evaluations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic convex EDP-like curve with a known minimum at `opt_hz`.
    fn convex_curve(opt_hz: f64) -> impl Fn(f64) -> f64 {
        move |f_hz: f64| {
            let x = (f_hz - opt_hz) / 1.0e9;
            1.0 + x * x
        }
    }

    fn a100() -> DvfsModel {
        DvfsModel::nvidia_a100()
    }

    /// The true grid minimum of a curve by brute force.
    fn grid_argmin(model: &DvfsModel, curve: &impl Fn(f64) -> f64) -> f64 {
        model
            .supported_range(model.f_min_hz, model.f_max_hz)
            .into_iter()
            .min_by(|a, b| curve(*a).total_cmp(&curve(*b)))
            .unwrap()
    }

    fn assert_within_one_step(model: &DvfsModel, found: f64, expected: f64) {
        assert!(
            (found - expected).abs() <= model.f_step_hz + 1.0,
            "found {:.1} MHz, expected {:.1} MHz",
            found / 1.0e6,
            expected / 1.0e6
        );
    }

    #[test]
    fn exhaustive_finds_exact_grid_minimum() {
        let model = a100();
        let curve = convex_curve(900.0e6);
        let mut sweep = ExhaustiveSweep::new(&model);
        let result = tune(&mut sweep, &curve, 10_000).unwrap();
        assert_eq!(result.best_frequency_hz, grid_argmin(&model, &curve));
        assert_eq!(result.evaluations, sweep.grid_len());
        assert!(sweep.is_converged());
    }

    #[test]
    fn golden_section_matches_exhaustive_within_one_step() {
        let model = a100();
        for opt_mhz in [250.0, 615.0, 907.0, 1200.0, 1410.0] {
            let curve = convex_curve(opt_mhz * 1.0e6);
            let expected = grid_argmin(&model, &curve);
            let mut gs = GoldenSection::new(&model);
            let result = tune(&mut gs, &curve, 10_000).unwrap();
            assert_within_one_step(&model, result.best_frequency_hz, expected);
            assert!(
                result.evaluations < 30,
                "golden section spent {} evaluations",
                result.evaluations
            );
        }
    }

    #[test]
    fn hill_climb_matches_exhaustive_within_one_step() {
        let model = a100();
        for opt_mhz in [250.0, 615.0, 907.0, 1200.0, 1410.0] {
            let curve = convex_curve(opt_mhz * 1.0e6);
            let expected = grid_argmin(&model, &curve);
            let mut hc = HillClimb::new(&model);
            let result = tune(&mut hc, &curve, 10_000).unwrap();
            assert_within_one_step(&model, result.best_frequency_hz, expected);
            assert!(
                result.evaluations < ExhaustiveSweep::new(&model).grid_len(),
                "hill climb spent {} evaluations",
                result.evaluations
            );
        }
    }

    #[test]
    fn online_strategies_beat_the_sweep_on_evaluations() {
        let model = a100();
        let curve = convex_curve(1005.0e6);
        let mut sweep = ExhaustiveSweep::new(&model);
        let mut gs = GoldenSection::new(&model);
        let mut hc = HillClimb::new(&model);
        let sweep_evals = tune(&mut sweep, &curve, 10_000).unwrap().evaluations;
        let gs_evals = tune(&mut gs, &curve, 10_000).unwrap().evaluations;
        let hc_evals = tune(&mut hc, &curve, 10_000).unwrap().evaluations;
        assert!(gs_evals < sweep_evals);
        assert!(hc_evals < sweep_evals);
    }

    #[test]
    fn proposals_always_on_grid_and_in_range() {
        let model = DvfsModel::amd_mi250x();
        let curve = convex_curve(1100.0e6);
        for strategy in [
            Box::new(ExhaustiveSweep::new(&model)) as Box<dyn SearchStrategy>,
            Box::new(GoldenSection::new(&model)),
            Box::new(HillClimb::new(&model)),
        ] {
            let mut strategy = strategy;
            while let Some(f) = strategy.propose() {
                assert!(f >= model.f_min_hz && f <= model.f_max_hz);
                let steps = (f - model.f_min_hz) / model.f_step_hz;
                assert!((steps - steps.round()).abs() < 1e-6, "off-grid proposal {f}");
                strategy.observe(f, curve(f));
            }
        }
    }

    #[test]
    fn propose_is_stable_until_observed() {
        let model = a100();
        let mut hc = HillClimb::new(&model);
        let first = hc.propose().unwrap();
        assert_eq!(hc.propose(), Some(first));
        hc.observe(first, 1.0);
        let second = hc.propose().unwrap();
        assert_ne!(grid_key(first), grid_key(second));
    }

    #[test]
    fn monotone_curve_converges_to_boundary() {
        let model = a100();
        // Strictly decreasing score with frequency: optimum at f_max.
        let curve = |f: f64| -f;
        for strategy in [
            Box::new(GoldenSection::new(&model)) as Box<dyn SearchStrategy>,
            Box::new(HillClimb::new(&model)),
        ] {
            let mut strategy = strategy;
            let result = tune(&mut *strategy, curve, 10_000).unwrap();
            assert_within_one_step(&model, result.best_frequency_hz, model.f_max_hz);
        }
    }

    #[test]
    fn flat_plateau_terminates_for_any_score_sign() {
        let model = a100();
        for plateau in [-5.0, 0.0, 5.0] {
            let mut hc = HillClimb::new(&model);
            let result = tune(&mut hc, |_| plateau, 10_000).unwrap();
            // Equal scores are never improvements: the climber must shrink
            // its stride in place instead of wandering the plateau.
            assert!(
                result.evaluations <= 12,
                "plateau at {plateau}: spent {} evaluations",
                result.evaluations
            );
            assert!(hc.is_converged());
        }
    }

    #[test]
    fn hill_climb_from_custom_start() {
        let model = a100();
        let curve = convex_curve(600.0e6);
        let mut hc = HillClimb::from(&model, 300.0e6, 4.0);
        let result = tune(&mut hc, &curve, 10_000).unwrap();
        assert_within_one_step(&model, result.best_frequency_hz, grid_argmin(&model, &curve));
    }
}
