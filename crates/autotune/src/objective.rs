//! Tuning objectives: what "best frequency" means.
//!
//! The paper's offline sweep (Figures 4 and 5) reads the minimum off a
//! normalised EDP curve; the governor needs the same quantity as a scalar
//! score it can minimise online. Scores are built on the
//! [`EdpPoint`](energy_analysis::EdpPoint) arithmetic of the analysis crate so
//! that online and offline results are numerically identical.

use energy_analysis::EdpPoint;

/// A scalar objective over one measured `(energy, time)` observation.
///
/// Lower is better. Implementations must be monotone in both energy and time
/// so that the search strategies' convexity assumptions hold.
pub trait Objective: Send + Sync {
    /// Short name used in reports (e.g. `"edp"`).
    fn name(&self) -> &'static str;

    /// Score one observation; lower is better.
    fn score(&self, energy_j: f64, time_s: f64) -> f64;

    /// Score one sweep point (same arithmetic as the offline analysis).
    fn score_point(&self, point: &EdpPoint) -> f64 {
        self.score(point.energy_j, point.time_s)
    }
}

/// Minimise energy-to-solution, ignoring runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct Energy;

impl Objective for Energy {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn score(&self, energy_j: f64, _time_s: f64) -> f64 {
        energy_j
    }
}

/// Minimise the energy-delay product `E · T` (the paper's Figure 4 metric).
#[derive(Clone, Copy, Debug, Default)]
pub struct Edp;

impl Objective for Edp {
    fn name(&self) -> &'static str {
        "edp"
    }

    fn score(&self, energy_j: f64, time_s: f64) -> f64 {
        EdpPoint {
            frequency_hz: 0.0,
            energy_j,
            time_s,
        }
        .edp()
    }
}

/// Minimise the energy-delay-squared product `E · T²` (weights runtime more
/// heavily, favouring higher frequencies than EDP).
#[derive(Clone, Copy, Debug, Default)]
pub struct Ed2p;

impl Objective for Ed2p {
    fn name(&self) -> &'static str {
        "ed2p"
    }

    fn score(&self, energy_j: f64, time_s: f64) -> f64 {
        EdpPoint {
            frequency_hz: 0.0,
            energy_j,
            time_s,
        }
        .ed2p()
    }
}

/// Minimise energy subject to a soft time budget: observations within the
/// budget score by energy alone; over-budget observations are penalised
/// proportionally to the overrun, steering the search back toward faster
/// operating points.
#[derive(Clone, Copy, Debug)]
pub struct TimeConstrainedEnergy {
    /// Maximum acceptable duration of one observation, in seconds.
    pub time_budget_s: f64,
    /// Penalty weight in joules per second of overrun. Should exceed the
    /// workload's power draw so that slowing past the budget never pays off.
    pub penalty_j_per_s: f64,
}

impl TimeConstrainedEnergy {
    /// Budgeted-energy objective with a default penalty of 10 kJ/s.
    pub fn new(time_budget_s: f64) -> Self {
        Self {
            time_budget_s,
            penalty_j_per_s: 10.0e3,
        }
    }
}

impl Objective for TimeConstrainedEnergy {
    fn name(&self) -> &'static str {
        "time-constrained-energy"
    }

    fn score(&self, energy_j: f64, time_s: f64) -> f64 {
        let overrun = (time_s - self.time_budget_s).max(0.0);
        energy_j + overrun * self.penalty_j_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edp_matches_analysis_arithmetic() {
        let p = EdpPoint {
            frequency_hz: 1.0e9,
            energy_j: 500.0,
            time_s: 4.0,
        };
        assert_eq!(Edp.score_point(&p), p.edp());
        assert_eq!(Ed2p.score_point(&p), p.ed2p());
        assert_eq!(Energy.score_point(&p), 500.0);
    }

    #[test]
    fn ed2p_prefers_faster_points_than_edp() {
        // Fast-but-hungry vs slow-but-frugal: EDP prefers the frugal point,
        // ED²P the fast one.
        let fast = (1150.0, 10.0);
        let slow = (770.0, 13.0);
        assert!(Edp.score(slow.0, slow.1) < Edp.score(fast.0, fast.1));
        assert!(Ed2p.score(fast.0, fast.1) < Ed2p.score(slow.0, slow.1));
    }

    #[test]
    fn time_budget_penalises_overrun() {
        let o = TimeConstrainedEnergy::new(10.0);
        assert_eq!(o.score(500.0, 9.0), 500.0);
        assert!(o.score(400.0, 12.0) > o.score(500.0, 9.0));
    }
}
