//! Frequency actuation: how the governor's decisions reach the hardware.
//!
//! The governor only ever talks to a [`FrequencyActuator`]; the concrete
//! implementation decides whether that means one simulated GPU die
//! ([`GpuHandle`]), every die of a cluster in lock-step ([`ClusterActuator`],
//! the `nvidia-smi -lgc`-across-all-nodes equivalent of the paper's sweep), or
//! a pure software model ([`ModelActuator`]) for tests and offline search.

use cluster::Cluster;
use hwmodel::dvfs::DvfsModel;
use hwmodel::gpu::GpuHandle;
use parking_lot::Mutex;

/// A device (or device group) whose compute clock the governor can set.
///
/// Implementations clamp and snap requests onto the device's DVFS grid and
/// report the frequency actually applied, mirroring `nvidia-smi -lgc`
/// semantics.
pub trait FrequencyActuator: Send + Sync {
    /// The DVFS model describing the supported range and step granularity.
    fn dvfs(&self) -> DvfsModel;

    /// Request a compute frequency; returns the clamped/snapped value applied.
    fn set_frequency(&self, f_hz: f64) -> f64;

    /// The currently applied compute frequency.
    fn frequency(&self) -> f64;
}

impl FrequencyActuator for GpuHandle {
    fn dvfs(&self) -> DvfsModel {
        self.spec().dvfs.clone()
    }

    fn set_frequency(&self, f_hz: f64) -> f64 {
        self.set_compute_frequency(f_hz)
    }

    fn frequency(&self) -> f64 {
        self.compute_frequency()
    }
}

/// Actuator driving every GPU die of a [`Cluster`] in lock-step, as the
/// paper's frequency sweeps do across all nodes of a job allocation.
pub struct ClusterActuator {
    cluster: Cluster,
    dvfs: DvfsModel,
    current: Mutex<f64>,
}

impl ClusterActuator {
    /// Wrap a cluster; the DVFS model and the initial frequency are taken from
    /// the first GPU die (which may already be pinned below nominal, e.g. by a
    /// campaign's `gpu_frequency_hz` override).
    pub fn new(cluster: Cluster) -> Self {
        let first_gpu = &cluster.node(0).gpus()[0];
        let dvfs = first_gpu.spec().dvfs.clone();
        let current = first_gpu.compute_frequency();
        Self {
            cluster,
            dvfs,
            current: Mutex::new(current),
        }
    }
}

impl FrequencyActuator for ClusterActuator {
    fn dvfs(&self) -> DvfsModel {
        self.dvfs.clone()
    }

    fn set_frequency(&self, f_hz: f64) -> f64 {
        let applied = self.cluster.set_gpu_frequency(f_hz);
        *self.current.lock() = applied;
        applied
    }

    fn frequency(&self) -> f64 {
        *self.current.lock()
    }
}

/// Pure-model actuator: tracks the applied frequency without any device.
///
/// Used by unit/property tests and by offline searches where the evaluation
/// function itself knows how to cost a frequency.
pub struct ModelActuator {
    dvfs: DvfsModel,
    current: Mutex<f64>,
}

impl ModelActuator {
    /// Start at the model's maximum (nominal) frequency.
    pub fn new(dvfs: DvfsModel) -> Self {
        let current = dvfs.f_max_hz;
        Self {
            dvfs,
            current: Mutex::new(current),
        }
    }
}

impl FrequencyActuator for ModelActuator {
    fn dvfs(&self) -> DvfsModel {
        self.dvfs.clone()
    }

    fn set_frequency(&self, f_hz: f64) -> f64 {
        let applied = self.dvfs.clamp(f_hz);
        *self.current.lock() = applied;
        applied
    }

    fn frequency(&self) -> f64 {
        *self.current.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch::SystemKind;

    #[test]
    fn model_actuator_clamps_to_grid() {
        let a = ModelActuator::new(DvfsModel::nvidia_a100());
        assert_eq!(a.frequency(), 1410.0e6);
        let applied = a.set_frequency(1007.0e6);
        assert!(applied <= 1007.0e6);
        let steps = (applied - a.dvfs().f_min_hz) / a.dvfs().f_step_hz;
        assert!((steps - steps.round()).abs() < 1e-9);
        assert_eq!(a.frequency(), applied);
    }

    #[test]
    fn gpu_handle_acts_as_actuator() {
        let cluster = Cluster::with_gpu_dies(SystemKind::MiniHpc, 1);
        let gpu = cluster.node(0).gpus()[0].clone();
        let actuator: &dyn FrequencyActuator = &gpu;
        let applied = actuator.set_frequency(1005.0e6);
        assert_eq!(applied, gpu.compute_frequency());
    }

    #[test]
    fn cluster_actuator_reports_prepinned_frequency() {
        let cluster = Cluster::with_gpu_dies(SystemKind::MiniHpc, 2);
        cluster.set_gpu_frequency(1005.0e6);
        let actuator = ClusterActuator::new(cluster.clone());
        assert_eq!(actuator.frequency(), cluster.node(0).gpus()[0].compute_frequency());
        assert!((actuator.frequency() - 1005.0e6).abs() < 1.0);
    }

    #[test]
    fn cluster_actuator_moves_every_die() {
        let cluster = Cluster::with_gpu_dies(SystemKind::MiniHpc, 2);
        let actuator = ClusterActuator::new(cluster.clone());
        let applied = actuator.set_frequency(1110.0e6);
        assert_eq!(actuator.frequency(), applied);
        for node in cluster.nodes() {
            for gpu in node.gpus() {
                assert_eq!(gpu.compute_frequency(), applied);
            }
        }
    }
}
