//! # autotune — online per-stage DVFS governance
//!
//! The paper finds the energy/runtime sweet spot of GPU frequency scaling
//! *offline*: sweep fixed compute clocks, record energy and time-to-solution,
//! read the minimum off the normalised EDP curve (Figures 4 and 5). This
//! crate closes that loop *online*: a [`Governor`] rides the measurement
//! infrastructure that already brackets every simulation stage
//! ([`pmt::PowerMeter`] regions) and steers the GPU clock toward the minimum
//! of a pluggable [`Objective`] while the campaign runs.
//!
//! The pieces, bottom-up:
//!
//! * [`objective`] — what to minimise: [`Energy`](objective::Energy),
//!   [`Edp`](objective::Edp), [`Ed2p`](objective::Ed2p) or
//!   [`TimeConstrainedEnergy`](objective::TimeConstrainedEnergy), built on
//!   the same [`EdpPoint`](energy_analysis::EdpPoint) arithmetic as the
//!   offline analysis;
//! * [`strategy`] — how to search the DVFS grid:
//!   [`ExhaustiveSweep`](strategy::ExhaustiveSweep) (the offline baseline),
//!   [`GoldenSection`](strategy::GoldenSection) (O(log n) evaluations on the
//!   unimodal EDP curves) and [`HillClimb`](strategy::HillClimb) (robust
//!   per-stage default), all speaking one propose/observe protocol;
//! * [`actuator`] — how decisions reach hardware:
//!   [`FrequencyActuator`](actuator::FrequencyActuator) implemented by
//!   [`hwmodel::GpuHandle`], a whole-[`ClusterActuator`](actuator::ClusterActuator)
//!   and a pure [`ModelActuator`](actuator::ModelActuator);
//! * [`governor`] — the closed loop: a [`pmt::RegionObserver`] that proposes
//!   a frequency at every `start_region`, scores the finished record at
//!   `end_region`, and keeps independent search state per stage label, so
//!   `MomentumEnergy` and `DomainDecompAndSync` each find their own optimum.
//!
//! ## Example: tune a synthetic stage offline
//!
//! ```
//! use autotune::strategy::{tune, GoldenSection, SearchStrategy};
//! use hwmodel::DvfsModel;
//!
//! let model = DvfsModel::nvidia_a100();
//! // A convex EDP-like curve with its minimum near 900 MHz.
//! let edp = |f_hz: f64| 1.0 + ((f_hz - 900.0e6) / 1.0e9).powi(2);
//! let mut search = GoldenSection::new(&model);
//! let result = tune(&mut search, edp, 1000).unwrap();
//! assert!((result.best_frequency_hz - 900.0e6).abs() <= 2.0 * model.f_step_hz);
//! assert!(result.evaluations < 30); // vs 81 grid points exhaustively
//! ```

#![warn(missing_docs)]

pub mod actuator;
pub mod governor;
pub mod objective;
pub mod strategy;

pub use actuator::{ClusterActuator, FrequencyActuator, ModelActuator};
pub use governor::{EnergySource, Governor, GovernorConfig, StageTuning, StrategyKind};
pub use objective::{Ed2p, Edp, Energy, Objective, TimeConstrainedEnergy};
pub use strategy::{tune, ExhaustiveSweep, GoldenSection, HillClimb, SearchStrategy, TuneResult};
