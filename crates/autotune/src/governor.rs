//! The online per-stage DVFS governor.
//!
//! A [`Governor`] is a [`pmt::RegionObserver`]: registered on a rank's
//! [`PowerMeter`](pmt::PowerMeter), it sees every instrumented region of the
//! time-stepping loop. At `start_region` it sets the GPU compute clock to the
//! stage's next trial frequency (through a [`FrequencyActuator`]); at
//! `end_region` it scores the finished [`MeasurementRecord`] with its
//! [`Objective`] and feeds the score back into that stage's
//! [`SearchStrategy`]. Each stage label owns an independent strategy, so
//! compute-bound stages (`MomentumEnergy`) and memory-bound stages
//! (`DomainDecompAndSync`) converge to different operating points — the
//! online counterpart of the paper's per-function Figure 5 observation.

use crate::actuator::FrequencyActuator;
use crate::objective::Objective;
use crate::strategy::{ExhaustiveSweep, GoldenSection, HillClimb, SearchStrategy};
use hwmodel::dvfs::DvfsModel;
use parking_lot::Mutex;
use pmt::{Domain, DomainKind, MeasurementRecord, RegionObserver};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Which search algorithm each governed stage runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StrategyKind {
    /// Visit every grid point (the offline baseline; O(grid) observations).
    Exhaustive,
    /// Golden-section search (O(log grid) observations; assumes unimodality).
    GoldenSection,
    /// Step-halving hill-climb from the nominal frequency (robust default).
    HillClimb {
        /// Initial stride in grid steps.
        initial_steps: f64,
    },
}

impl StrategyKind {
    /// Hill-climbing with the default stride.
    pub fn default_hill_climb() -> Self {
        StrategyKind::HillClimb {
            initial_steps: HillClimb::DEFAULT_INITIAL_STEPS,
        }
    }

    fn build(&self, model: &DvfsModel) -> Box<dyn SearchStrategy> {
        match *self {
            StrategyKind::Exhaustive => Box::new(ExhaustiveSweep::new(model)),
            StrategyKind::GoldenSection => Box::new(GoldenSection::new(model)),
            StrategyKind::HillClimb { initial_steps } => {
                Box::new(HillClimb::from(model, model.f_max_hz, initial_steps))
            }
        }
    }
}

/// Which energy a measurement record contributes to the objective.
#[derive(Clone, Debug, PartialEq)]
pub enum EnergySource {
    /// Sum over every measured domain (node-level view).
    Total,
    /// One specific domain (e.g. `Domain::gpu(0)`).
    Domain(Domain),
    /// Every domain of one kind (e.g. all GPU cards of the node).
    Kind(DomainKind),
}

impl EnergySource {
    fn energy_j(&self, record: &MeasurementRecord) -> f64 {
        match self {
            EnergySource::Total => record.energy_j.values().sum(),
            EnergySource::Domain(domain) => record.energy(*domain),
            EnergySource::Kind(kind) => record.energy_by_kind(*kind),
        }
    }
}

/// Governor configuration.
pub struct GovernorConfig {
    /// Objective to minimise per stage.
    pub objective: Arc<dyn Objective>,
    /// Search algorithm run per stage.
    pub strategy: StrategyKind,
    /// Which measured energy feeds the objective.
    pub energy_source: EnergySource,
    /// Region labels to govern; `None` governs every observed label.
    ///
    /// Governed labels should not nest: when a governed region's clock is
    /// re-actuated mid-region by another governed region (e.g. a governed
    /// whole-loop label over governed stages), its observation mixes several
    /// frequencies and is discarded (see [`Governor::discarded_observations`]).
    pub labels: Option<BTreeSet<String>>,
}

impl GovernorConfig {
    /// EDP-minimising hill-climb over the node's GPU-card energy, governing
    /// the given stage labels.
    pub fn edp_hill_climb<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            objective: Arc::new(crate::objective::Edp),
            strategy: StrategyKind::default_hill_climb(),
            energy_source: EnergySource::Kind(DomainKind::GpuCard),
            labels: Some(labels.into_iter().map(Into::into).collect()),
        }
    }

    /// Same as [`GovernorConfig::edp_hill_climb`] but with golden-section search.
    pub fn edp_golden_section<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            strategy: StrategyKind::GoldenSection,
            ..Self::edp_hill_climb(labels)
        }
    }
}

struct StageState {
    strategy: Box<dyn SearchStrategy>,
    /// Frequency applied for the currently open region of this stage, plus
    /// the actuation epoch at which it was applied (used to detect that some
    /// other governed region re-actuated the clock mid-region).
    active: Option<(f64, u64)>,
    observations: usize,
}

/// Upper bound on the retained request log: enough for any test or debugging
/// session while keeping long-running governed campaigns at constant memory.
const REQUEST_LOG_CAP: usize = 65_536;

#[derive(Default)]
struct GovernorState {
    stages: BTreeMap<String, StageState>,
    /// The first [`REQUEST_LOG_CAP`] requested frequencies, in request order.
    requested: Vec<f64>,
    /// Incremented on every *effective* actuation (frequency actually moved).
    epoch: u64,
    frequency_changes: usize,
    /// Observations discarded because the clock moved mid-region (overlapping
    /// governed regions, e.g. a governed whole-loop label over governed stages).
    discarded_observations: usize,
    /// Observations discarded because the configured [`EnergySource`] matched
    /// no domain of the record (or the region had zero/non-finite extent).
    invalid_observations: usize,
}

/// Per-stage tuning status snapshot (see [`Governor::report`]).
#[derive(Clone, Debug, PartialEq)]
pub struct StageTuning {
    /// Region label of the stage.
    pub label: String,
    /// Best frequency found so far, in Hz.
    pub best_frequency_hz: Option<f64>,
    /// Objective score at the best frequency.
    pub best_score: Option<f64>,
    /// Number of scored observations consumed.
    pub observations: usize,
    /// True once the stage's strategy has converged.
    pub converged: bool,
}

/// Closed-loop DVFS controller: observe stage energy, decide, actuate.
pub struct Governor {
    config: GovernorConfig,
    actuator: Arc<dyn FrequencyActuator>,
    model: DvfsModel,
    telemetry: Option<(Arc<telemetry::Telemetry>, u32)>,
    state: Mutex<GovernorState>,
}

impl Governor {
    /// Create a governor actuating through `actuator`.
    pub fn new(config: GovernorConfig, actuator: Arc<dyn FrequencyActuator>) -> Self {
        let model = actuator.dvfs();
        Self {
            config,
            actuator,
            model,
            telemetry: None,
            state: Mutex::new(GovernorState::default()),
        }
    }

    /// Stream the governor's decisions into a telemetry sink as `"autotune"`
    /// instant events tagged with `rank`: `"{label}.propose"` (with the trial
    /// `f_mhz`) on every governed region start, `"{label}.observe"` (with
    /// `f_mhz`, the objective `score`, `converged` and the running
    /// `observations` count) for every scored measurement.
    pub fn with_telemetry(mut self, sink: Arc<telemetry::Telemetry>, rank: u32) -> Self {
        self.telemetry = Some((sink, rank));
        self
    }

    /// Convenience: wrap `self` for registration on a meter.
    pub fn into_observer(self: Arc<Self>) -> Arc<dyn RegionObserver> {
        self
    }

    /// The DVFS model the governor operates on.
    pub fn dvfs(&self) -> &DvfsModel {
        &self.model
    }

    fn governs(&self, label: &str) -> bool {
        match &self.config.labels {
            Some(labels) => labels.contains(label),
            None => true,
        }
    }

    /// Best frequency found so far for a stage label.
    pub fn best_frequency(&self, label: &str) -> Option<f64> {
        self.state.lock().stages.get(label).and_then(|s| s.strategy.best_frequency())
    }

    /// True once the stage's search has converged.
    pub fn is_converged(&self, label: &str) -> bool {
        self.state
            .lock()
            .stages
            .get(label)
            .map(|s| s.strategy.is_converged())
            .unwrap_or(false)
    }

    /// True once every governed stage seen so far has converged.
    pub fn all_converged(&self) -> bool {
        let state = self.state.lock();
        !state.stages.is_empty() && state.stages.values().all(|s| s.strategy.is_converged())
    }

    /// The frequencies requested so far, in request order (test/debug hook;
    /// capped at the first 65 536 requests so long runs stay bounded).
    pub fn requested_frequencies(&self) -> Vec<f64> {
        self.state.lock().requested.clone()
    }

    /// Number of effective actuator frequency changes issued (no-op requests
    /// where the device already ran at the target are not actuated or counted).
    pub fn frequency_changes(&self) -> usize {
        self.state.lock().frequency_changes
    }

    /// Observations discarded because another governed region re-actuated the
    /// clock mid-region, making the measurement unattributable to a single
    /// frequency. Non-zero values mean the governed labels overlap — govern
    /// only non-nested regions (e.g. the pipeline stages, not the whole loop).
    pub fn discarded_observations(&self) -> usize {
        self.state.lock().discarded_observations
    }

    /// Observations discarded because the configured [`EnergySource`] matched
    /// no domain in the measurement record (zero or non-finite energy/time).
    /// A non-zero value almost always means the energy source is wrong for
    /// the attached meter's sensors — e.g. scoring `DomainKind::GpuCard` on a
    /// meter that reports per-die `Domain::gpu(i)` domains.
    pub fn invalid_observations(&self) -> usize {
        self.state.lock().invalid_observations
    }

    /// Best frequency per stage label for every stage whose search has
    /// converged, in label order — the per-scenario operating table a caller
    /// (e.g. the `scenario_gallery` experiment) can apply or publish.
    pub fn best_frequencies(&self) -> BTreeMap<String, f64> {
        let state = self.state.lock();
        state
            .stages
            .iter()
            .filter(|(_, s)| s.strategy.is_converged())
            .filter_map(|(label, s)| s.strategy.best_frequency().map(|f| (label.clone(), f)))
            .collect()
    }

    /// Snapshot of every governed stage's tuning status, by label.
    pub fn report(&self) -> Vec<StageTuning> {
        let state = self.state.lock();
        state
            .stages
            .iter()
            .map(|(label, s)| StageTuning {
                label: label.clone(),
                best_frequency_hz: s.strategy.best_frequency(),
                best_score: s.strategy.best_score(),
                observations: s.observations,
                converged: s.strategy.is_converged(),
            })
            .collect()
    }
}

impl RegionObserver for Governor {
    fn on_region_start(&self, label: &str, _time_s: f64) {
        if !self.governs(label) {
            return;
        }
        let mut state = self.state.lock();
        let stage = state.stages.entry(label.to_string()).or_insert_with(|| StageState {
            strategy: self.config.strategy.build(&self.model),
            active: None,
            observations: 0,
        });
        // While searching, run the stage at the strategy's next trial
        // point; once converged, pin it to the discovered optimum.
        let target = stage
            .strategy
            .propose()
            .or_else(|| stage.strategy.best_frequency())
            .unwrap_or(self.model.f_max_hz);
        if state.requested.len() < REQUEST_LOG_CAP {
            state.requested.push(target);
        }
        // Only touch the device when the clock actually has to move; after
        // convergence this makes region starts free of actuator traffic.
        if (self.actuator.frequency() - target).abs() >= 0.5 {
            let applied = self.actuator.set_frequency(target);
            debug_assert!(
                (applied - target).abs() < 1.0,
                "governor requested off-grid frequency {target}, device applied {applied}"
            );
            state.frequency_changes += 1;
            state.epoch += 1;
        }
        let epoch = state.epoch;
        if let Some(stage) = state.stages.get_mut(label) {
            stage.active = Some((target, epoch));
        }
        drop(state);
        if let Some((sink, rank)) = &self.telemetry {
            sink.instant(
                "autotune",
                &format!("{label}.propose"),
                *rank,
                &[("f_mhz", target / 1.0e6)],
            );
        }
    }

    fn on_region_end(&self, record: &MeasurementRecord) {
        if !self.governs(&record.label) {
            return;
        }
        let energy_j = self.config.energy_source.energy_j(record);
        let time_s = record.duration_s();
        let mut state = self.state.lock();
        let epoch_now = state.epoch;
        let mut discarded = false;
        let mut invalid = false;
        let mut scored: Option<(f64, f64, bool, usize)> = None;
        if let Some(stage) = state.stages.get_mut(&record.label) {
            if let Some((f, epoch_at_start)) = stage.active.take() {
                if energy_j <= 0.0 || !energy_j.is_finite() || time_s <= 0.0 || !time_s.is_finite() {
                    // The configured energy source matched nothing in this
                    // record (or the region had zero extent): feeding a zero
                    // score would make every search "converge" instantly at
                    // its starting point and mask the misconfiguration.
                    invalid = true;
                } else if epoch_at_start != epoch_now {
                    // Another governed region re-actuated the clock while this
                    // region was open: the measured energy/time mixes several
                    // frequencies and cannot be attributed to `f`.
                    discarded = true;
                } else if !stage.strategy.is_converged() {
                    let score = self.config.objective.score(energy_j, time_s);
                    stage.strategy.observe(f, score);
                    stage.observations += 1;
                    scored = Some((f, score, stage.strategy.is_converged(), stage.observations));
                }
            }
        }
        if discarded {
            state.discarded_observations += 1;
        }
        if invalid {
            state.invalid_observations += 1;
        }
        drop(state);
        if let (Some((sink, rank)), Some((f, score, converged, observations))) = (&self.telemetry, scored) {
            sink.instant(
                "autotune",
                &format!("{}.observe", record.label),
                *rank,
                &[
                    ("f_mhz", f / 1.0e6),
                    ("score", score),
                    ("converged", f64::from(converged)),
                    ("observations", observations as f64),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ModelActuator;
    use crate::objective::Edp;
    use pmt::backends::dummy::DummySensor;
    use pmt::clock::ManualClock;
    use pmt::PowerMeter;

    /// A meter over a fake device whose power and speed follow the DVFS model,
    /// with an interior EDP minimum.
    fn governed_meter(
        governor: &Arc<Governor>,
        actuator: &Arc<ModelActuator>,
    ) -> (Arc<PowerMeter>, ManualClock, Arc<DummySensor>) {
        let clock = ManualClock::new();
        let sensor = Arc::new(DummySensor::new(Domain::gpu(0), 100.0));
        let meter = Arc::new(
            PowerMeter::builder()
                .shared_sensor(sensor.clone() as Arc<dyn pmt::Sensor>)
                .clock(clock.clone())
                .build(),
        );
        meter.add_region_observer(governor.clone().into_observer());
        let _ = actuator;
        (meter, clock, sensor)
    }

    /// Synthetic per-stage physics: duration and power as functions of the
    /// applied frequency, chosen so the EDP optimum is interior.
    fn stage_duration_s(model: &DvfsModel, f: f64, compute_fraction: f64) -> f64 {
        let x = model.throughput_scale(f);
        10.0 * (compute_fraction / x + (1.0 - compute_fraction))
    }

    fn stage_power_w(model: &DvfsModel, f: f64) -> f64 {
        60.0 + 340.0 * model.dynamic_power_scale(f)
    }

    fn run_governed_stage(
        meter: &PowerMeter,
        clock: &ManualClock,
        sensor: &DummySensor,
        actuator: &ModelActuator,
        model: &DvfsModel,
        label: &str,
        compute_fraction: f64,
    ) {
        meter.start_region(label).unwrap();
        let f = actuator.frequency();
        sensor.set_power(stage_power_w(model, f));
        // One poll after the power change so the trapezoid uses the new level.
        meter.poll().unwrap();
        clock.advance(stage_duration_s(model, f, compute_fraction));
        meter.end_region(label).unwrap();
    }

    #[test]
    fn governor_converges_per_stage_to_different_frequencies() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig {
                objective: Arc::new(Edp),
                strategy: StrategyKind::default_hill_climb(),
                energy_source: EnergySource::Domain(Domain::gpu(0)),
                labels: Some(["compute".to_string(), "memory".to_string()].into()),
            },
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);

        for _ in 0..80 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "compute", 0.95);
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "memory", 0.15);
        }

        assert!(governor.all_converged());
        let table = governor.best_frequencies();
        assert_eq!(table.len(), 2, "both converged stages appear in the frequency table");
        assert_eq!(table["compute"], governor.best_frequency("compute").unwrap());
        let f_compute = governor.best_frequency("compute").unwrap();
        let f_memory = governor.best_frequency("memory").unwrap();
        // Compute-bound work wants a higher clock than memory-bound work.
        assert!(
            f_compute > f_memory + model.f_step_hz,
            "compute {:.0} MHz should exceed memory {:.0} MHz",
            f_compute / 1.0e6,
            f_memory / 1.0e6
        );

        // Online result matches the offline argmin of the same synthetic
        // physics, within one grid step.
        for (label, cf) in [("compute", 0.95), ("memory", 0.15)] {
            let offline = model
                .supported_range(model.f_min_hz, model.f_max_hz)
                .into_iter()
                .min_by(|a, b| {
                    let edp = |f: f64| stage_power_w(&model, f) * stage_duration_s(&model, f, cf).powi(2);
                    edp(*a).total_cmp(&edp(*b))
                })
                .unwrap();
            let online = governor.best_frequency(label).unwrap();
            assert!(
                (online - offline).abs() <= model.f_step_hz + 1.0,
                "{label}: online {:.0} MHz vs offline {:.0} MHz",
                online / 1.0e6,
                offline / 1.0e6
            );
        }
    }

    #[test]
    fn ungoverned_labels_are_ignored() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig::edp_hill_climb(["governed"]),
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, _sensor) = governed_meter(&governor, &actuator);
        meter.start_region("TimeSteppingLoop").unwrap();
        clock.advance(1.0);
        meter.end_region("TimeSteppingLoop").unwrap();
        assert!(governor.report().is_empty());
        assert_eq!(governor.frequency_changes(), 0);
    }

    #[test]
    fn requested_frequencies_stay_on_the_grid() {
        let model = DvfsModel::amd_mi250x();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig {
                objective: Arc::new(Edp),
                strategy: StrategyKind::GoldenSection,
                energy_source: EnergySource::Total,
                labels: None,
            },
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);
        for _ in 0..40 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.6);
        }
        let requested = governor.requested_frequencies();
        assert!(!requested.is_empty());
        for f in requested {
            assert!(f >= model.f_min_hz && f <= model.f_max_hz);
            let steps = (f - model.f_min_hz) / model.f_step_hz;
            assert!((steps - steps.round()).abs() < 1e-6, "off-grid request {f}");
        }
    }

    #[test]
    fn overlapping_governed_regions_are_detected_and_discarded() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig {
                objective: Arc::new(Edp),
                strategy: StrategyKind::default_hill_climb(),
                energy_source: EnergySource::Domain(Domain::gpu(0)),
                labels: None, // governs everything, including the outer loop
            },
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);

        // An outer region wrapping stage regions: the stages re-actuate the
        // clock mid-region, so the outer observation must be discarded, not
        // fed to the outer label's strategy as if it ran at one frequency.
        meter.start_region("outer").unwrap();
        for _ in 0..4 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.5);
        }
        clock.advance(1.0);
        meter.end_region("outer").unwrap();

        assert_eq!(governor.discarded_observations(), 1);
        let outer = governor.report().into_iter().find(|s| s.label == "outer").unwrap();
        assert_eq!(
            outer.observations, 0,
            "contaminated outer observation must not be scored"
        );
        let stage = governor.report().into_iter().find(|s| s.label == "stage").unwrap();
        assert_eq!(stage.observations, 4, "clean stage observations still feed the search");
    }

    #[test]
    fn no_op_frequency_requests_are_not_actuated() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig {
                energy_source: EnergySource::Domain(Domain::gpu(0)),
                ..GovernorConfig::edp_hill_climb(["stage"])
            },
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);
        for _ in 0..120 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        }
        assert!(governor.is_converged("stage"));
        let changes_at_convergence = governor.frequency_changes();
        // Once pinned, further region starts request the same optimum: the
        // device must not be re-actuated and the change count must not grow.
        for _ in 0..10 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        }
        assert_eq!(governor.frequency_changes(), changes_at_convergence);
        assert!(governor.requested_frequencies().len() >= 130);
    }

    #[test]
    fn mismatched_energy_source_is_flagged_not_converged() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        // GpuCard energy source against a meter reporting bare Domain::gpu(0):
        // every record scores zero energy, which must be rejected as invalid
        // instead of driving a bogus instant "convergence" at f_max.
        let governor = Arc::new(Governor::new(
            GovernorConfig::edp_hill_climb(["stage"]),
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);
        for _ in 0..20 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        }
        assert_eq!(governor.invalid_observations(), 20);
        let stage = governor.report().into_iter().find(|s| s.label == "stage").unwrap();
        assert_eq!(stage.observations, 0);
        assert!(!stage.converged, "zero-energy records must not fake convergence");
    }

    #[test]
    fn governor_decisions_stream_into_telemetry() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        let sink = Arc::new(telemetry::Telemetry::new());
        let governor = Arc::new(
            Governor::new(
                GovernorConfig {
                    energy_source: EnergySource::Domain(Domain::gpu(0)),
                    ..GovernorConfig::edp_hill_climb(["stage"])
                },
                actuator.clone() as Arc<dyn FrequencyActuator>,
            )
            .with_telemetry(Arc::clone(&sink), 3),
        );
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);
        for _ in 0..10 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        }
        let events = sink.events_snapshot();
        let proposes: Vec<_> = events.iter().filter(|e| e.name == "stage.propose").collect();
        let observes: Vec<_> = events.iter().filter(|e| e.name == "stage.observe").collect();
        assert_eq!(proposes.len(), 10, "one proposal per governed region start");
        // Observations stop streaming once the search converges, so there is
        // one event per *scored* record — at least one, never more than the
        // proposals.
        assert!(!observes.is_empty() && observes.len() <= proposes.len());
        assert!(events.iter().all(|e| e.cat == "autotune" && e.rank == 3));
        for e in &proposes {
            let f = e.args.iter().find(|(k, _)| k == "f_mhz").unwrap().1;
            assert!(f * 1.0e6 >= model.f_min_hz && f * 1.0e6 <= model.f_max_hz);
        }
        let last = observes.last().unwrap();
        for key in ["f_mhz", "score", "converged", "observations"] {
            assert!(last.args.iter().any(|(k, _)| k == key), "missing arg {key}");
        }
        assert_eq!(
            last.args.iter().find(|(k, _)| k == "observations").unwrap().1,
            observes.len() as f64
        );
    }

    #[test]
    fn converged_governor_pins_the_optimum() {
        let model = DvfsModel::nvidia_a100();
        let actuator = Arc::new(ModelActuator::new(model.clone()));
        // edp_hill_climb scores GPU-card energy; the dummy sensor reports a
        // bare GPU domain, so override the energy source to match.
        let governor = Arc::new(Governor::new(
            GovernorConfig {
                energy_source: EnergySource::Domain(Domain::gpu(0)),
                ..GovernorConfig::edp_hill_climb(["stage"])
            },
            actuator.clone() as Arc<dyn FrequencyActuator>,
        ));
        let (meter, clock, sensor) = governed_meter(&governor, &actuator);
        for _ in 0..120 {
            run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        }
        assert!(governor.is_converged("stage"));
        let best = governor.best_frequency("stage").unwrap();
        run_governed_stage(&meter, &clock, &sensor, &actuator, &model, "stage", 0.7);
        assert_eq!(actuator.frequency(), best);
    }
}
