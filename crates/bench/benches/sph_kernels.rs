//! Micro-benchmark: the CPU reference SPH pipeline (one full timestep and the
//! dominant MomentumEnergy kernel).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sphsim::Simulation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sph_kernels");
    group.sample_size(10);

    group.bench_function("turbulence_step_8cubed", |b| {
        b.iter_batched(
            || Simulation::turbulence(8, 1),
            |mut sim| sim.step(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("evrard_step_1000p", |b| {
        b.iter_batched(
            || Simulation::evrard(1000, 1),
            |mut sim| sim.step(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
