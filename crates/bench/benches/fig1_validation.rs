//! Benchmark for Figure 1: one PMT-vs-Slurm validation campaign (reduced size).

use bench::{bench_scenario, run_bench_campaign};
use criterion::{criterion_group, criterion_main, Criterion};
use energy_analysis::validation::pmt_node_level_energy;
use hwmodel::arch::SystemKind;
use sphsim::MAIN_LOOP_LABEL;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_validation");
    group.sample_size(10);
    group.bench_function("campaign_cscs_4ranks_3steps", |b| {
        b.iter(|| {
            let result = run_bench_campaign(SystemKind::CscsA100, bench_scenario("Turb"), 4, 3);
            pmt_node_level_energy(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
