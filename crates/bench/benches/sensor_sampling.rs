//! Micro-benchmark: sampling overhead of the back-ends and the meter,
//! including the file-based pm_counters/RAPL path over a virtual sysfs.

use cluster::{Cluster, SimClockAdapter, SimNodeSensor};
use criterion::{criterion_group, criterion_main, Criterion};
use hwmodel::arch::SystemKind;
use hwmodel::VirtualSysfs;
use pmt::backends::CrayPmCountersSensor;
use pmt::{PowerMeter, Sensor};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_sampling");
    group.sample_size(20);

    let cluster = Cluster::new(SystemKind::LumiG, 1);
    let node = cluster.node(0).clone();

    let sensor = SimNodeSensor::per_card(node.clone());
    group.bench_function("in_memory_node_sensor_sample", |b| b.iter(|| sensor.sample().unwrap()));

    let meter = PowerMeter::builder()
        .sensor(SimNodeSensor::per_card(node.clone()))
        .clock(SimClockAdapter::new(cluster.clock().clone()))
        .build();
    group.bench_function("meter_region_start_end", |b| {
        b.iter(|| {
            meter.start_region("bench").unwrap();
            meter.end_region("bench").unwrap()
        })
    });

    let dir = std::env::temp_dir().join(format!("bench-sysfs-{}", std::process::id()));
    let sysfs = VirtualSysfs::new(&dir, node, cluster.clock().clone());
    sysfs.materialize().unwrap();
    let file_sensor = CrayPmCountersSensor::discover(sysfs.pm_counters_root()).unwrap();
    group.bench_function("pm_counters_file_sample", |b| b.iter(|| file_sensor.sample().unwrap()));
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
