//! Benchmark for Table 1: constructing the scenario and node descriptions of
//! every system/test-case combination.

use criterion::{criterion_group, criterion_main, Criterion};
use hwmodel::arch::SystemKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("build_all_nodes_and_scenarios", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for system in SystemKind::all() {
                let node = system.node_builder().build();
                acc += node.power_w();
            }
            for scenario in sphsim::scenario::all() {
                acc += scenario.global_particle_options().iter().sum::<f64>();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
