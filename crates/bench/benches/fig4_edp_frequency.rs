//! Benchmark for Figure 4: one point of the EDP-vs-frequency sweep on miniHPC.

use bench::bench_scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use hwmodel::arch::SystemKind;
use slurm::AcctGatherEnergyType;
use sphsim::{run_campaign, CampaignConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_edp_frequency");
    group.sample_size(10);
    for &freq_mhz in &[1005.0, 1410.0] {
        group.bench_function(format!("minihpc_200cubed_{freq_mhz:.0}MHz"), |b| {
            b.iter(|| {
                let config = CampaignConfig {
                    system: SystemKind::MiniHpc,
                    scenario: bench_scenario("Turb"),
                    n_ranks: 2,
                    particles_per_rank: 8.0e6,
                    timesteps: 3,
                    gpu_frequency_hz: Some(freq_mhz * 1.0e6),
                    setup_seconds: 5.0,
                    teardown_seconds: 1.0,
                    slurm_backend: AcctGatherEnergyType::PmCounters,
                };
                let result = run_campaign(&config);
                result.true_main_loop_energy_j * result.main_loop_duration_s()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
