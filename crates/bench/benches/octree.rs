//! Micro-benchmark: octree construction and neighbour search (the
//! DomainDecompAndSync / FindNeighbors substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sphsim::Octree;

fn cloud(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let x = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let y = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let z = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let m = vec![1.0; n];
    (x, y, z, m)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("octree");
    group.sample_size(15);
    let (x, y, z, m) = cloud(20_000);

    group.bench_function("build_20k", |b| b.iter(|| Octree::build(&x, &y, &z, &m, 32)));

    let tree = Octree::build(&x, &y, &z, &m, 32);
    group.bench_function("neighbor_query_20k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            tree.neighbors_within((0.5, 0.5, 0.5), 0.05, &x, &y, &z, &mut out);
            out.len()
        })
    });
    group.bench_function("gravity_walk_20k", |b| {
        b.iter(|| tree.gravity_at((0.5, 0.5, 0.5), 0.5, 0.01, &x, &y, &z, &m, usize::MAX))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
