//! Benchmark for Figure 2: campaign + device-breakdown analysis (reduced size).

use bench::{bench_scenario, run_bench_campaign};
use criterion::{criterion_group, criterion_main, Criterion};
use energy_analysis::device_breakdown::device_breakdown;
use hwmodel::arch::SystemKind;
use sphsim::MAIN_LOOP_LABEL;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_device_breakdown");
    group.sample_size(10);
    let result = run_bench_campaign(SystemKind::LumiG, bench_scenario("Turb"), 8, 3);
    group.bench_function("breakdown_of_lumi_8rank_run", |b| {
        b.iter(|| device_breakdown(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL))
    });
    group.bench_function("campaign_lumi_8ranks_3steps", |b| {
        b.iter(|| run_bench_campaign(SystemKind::LumiG, bench_scenario("Turb"), 8, 3).true_main_loop_energy_j)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
