//! Micro-benchmark: power→energy integration (counter and trapezoid paths).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pmt::integration::{integrate_power_trace, EnergyAccumulator};
use pmt::{Domain, DomainSample};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_integration");
    group.sample_size(20);

    let trace: Vec<(f64, f64)> = (0..10_000).map(|i| (i as f64 * 0.1, 200.0 + (i % 7) as f64)).collect();
    group.bench_function("trapezoid_10k_samples", |b| {
        b.iter(|| integrate_power_trace(std::hint::black_box(&trace)))
    });

    group.bench_function("accumulator_counter_10k_updates", |b| {
        b.iter_batched(
            EnergyAccumulator::new,
            |mut acc| {
                for i in 0..10_000u64 {
                    acc.update(i as f64 * 0.1, &DomainSample::energy(Domain::gpu(0), i as f64));
                }
                acc.energy_j()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
