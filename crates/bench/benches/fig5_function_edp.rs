//! Benchmark for Figure 5: per-function EDP extraction under a frequency change.

use bench::{bench_campaign_config, bench_scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use energy_analysis::function_breakdown::function_breakdown;
use hwmodel::arch::SystemKind;
use sphsim::{run_campaign, MAIN_LOOP_LABEL};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_function_edp");
    group.sample_size(10);
    group.bench_function("per_function_edp_minihpc_1005MHz", |b| {
        b.iter(|| {
            let mut config = bench_campaign_config(SystemKind::MiniHpc, bench_scenario("Turb"), 2, 3);
            config.gpu_frequency_hz = Some(1005.0e6);
            let result = run_campaign(&config);
            let fb = function_breakdown(&result.rank_reports, &result.mapping, &[MAIN_LOOP_LABEL]);
            fb.functions
                .iter()
                .map(|f| (f.gpu_j + f.cpu_j + f.mem_j) * f.time_s)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
