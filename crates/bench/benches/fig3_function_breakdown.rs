//! Benchmark for Figure 3: per-function breakdown analysis (reduced size).

use bench::{bench_scenario, run_bench_campaign};
use criterion::{criterion_group, criterion_main, Criterion};
use energy_analysis::function_breakdown::function_breakdown;
use hwmodel::arch::SystemKind;
use sphsim::MAIN_LOOP_LABEL;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_function_breakdown");
    group.sample_size(10);
    let result = run_bench_campaign(SystemKind::CscsA100, bench_scenario("Evr"), 4, 5);
    group.bench_function("function_breakdown_4ranks_5steps", |b| {
        b.iter(|| {
            let fb = function_breakdown(&result.rank_reports, &result.mapping, &[MAIN_LOOP_LABEL]);
            fb.gpu_share_percent("MomentumEnergy")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
