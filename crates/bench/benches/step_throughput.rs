//! Before/after step-throughput benchmark of the flattened SPH hot path.
//!
//! Times the neighbour-pipeline stages of the CPU propagator on the Evrard
//! case — a scaled-down stand-in for the paper's Table-1 sizing (80 M
//! particles/GPU is not steppable on a laptop) — under both data paths:
//!
//! * **before**: construction-order particle storage, per-step freshly
//!   allocated octree, `Vec<Vec<usize>>` neighbour lists (see `bench::legacy`);
//! * **after**: Morton-sorted storage, reusable octree arena and CSR neighbour
//!   lists through a `StepWorkspace`.
//!
//! The state is held static (the same configuration is re-timed `steps`
//! times and the minimum per stage is kept), so the two pipelines measure
//! identical work. Results are written as `BENCH_step_throughput.json`
//! (particles/sec per stage, before/after, speedup). Environment knobs:
//!
//! * `SPHSIM_BENCH_N` — particle count (default 50000)
//! * `SPHSIM_BENCH_STEPS` — timing repetitions (default 5)
//! * `SPHSIM_BENCH_OUT` — output path (default `<repo root>/BENCH_step_throughput.json`)
//! * `SPHSIM_BENCH_BASELINE` — committed baseline to compare against; the
//!   process exits non-zero if any stage's `after_pps` falls below
//!   `SPHSIM_BENCH_TOLERANCE` (default 0.75) × the baseline value.
//! * `SPHSIM_BENCH_HISTORY` — per-PR trajectory file (JSONL, one run per
//!   line — `BENCH_history.jsonl` at the repo root for the full-size
//!   config). The gate then compares against the **best-known** value per
//!   stage: the max of the committed baseline and every history entry, so
//!   a regression can't hide behind an older, slower baseline.
//! * `SPHSIM_BENCH_STAGE_FLOOR` — per-stage ratio overrides for the gate,
//!   e.g. `FindNeighbors:0.85,XMass:0.9`: the named stage must reach that
//!   fraction of its best-known value (tighter or looser than the global
//!   tolerance). Unknown stage names abort — a typo must not silently
//!   disable the gate.
//! * `SPHSIM_BENCH_HISTORY_APPEND=1` — append this run to the history file
//!   (label via `SPHSIM_BENCH_LABEL`, default `local`). Only entries with
//!   a matching particle count ever mix: the gate skips history lines whose
//!   `particles` differs from the current run.

use bench::legacy;
use sphsim::observables::neighbor_count_stats;
use sphsim::physics::density::compute_density;
use sphsim::physics::eos::apply_eos;
use sphsim::physics::gradh::compute_gradh;
use sphsim::physics::iad::compute_div_curl;
use sphsim::physics::momentum::compute_momentum_energy;
use sphsim::{Octree, ParticleSet, StepWorkspace};
use std::time::Instant;

const STAGES: [&str; 6] = [
    "DomainDecompAndSync",
    "FindNeighbors",
    "XMass",
    "NormalizationGradh",
    "IADVelocityDivCurl",
    "MomentumEnergy",
];
const MAX_LEAF_SIZE: usize = 32;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn time(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn keep_min(best: &mut [f64; 6], stage: usize, seconds: f64) {
    best[stage] = best[stage].min(seconds);
}

/// Time one repetition of the legacy ("before") pipeline.
fn before_rep(p: &mut ParticleSet, tree: &mut Octree, nl: &mut legacy::VecNeighborLists, best: &mut [f64; 6]) {
    // Re-assignments drop the previous step's tree/lists inside the timed
    // window — that dealloc traffic is part of the steady-state stage cost.
    keep_min(
        best,
        0,
        time(|| *tree = Octree::build(&p.x, &p.y, &p.z, &p.m, MAX_LEAF_SIZE)),
    );
    keep_min(best, 1, time(|| *nl = legacy::find_neighbors(p, tree)));
    keep_min(best, 2, time(|| legacy::compute_density(p, nl)));
    keep_min(best, 3, time(|| legacy::compute_gradh(p, nl)));
    keep_min(best, 4, time(|| legacy::compute_div_curl(p, nl)));
    keep_min(best, 5, time(|| legacy::compute_momentum_energy(p, nl)));
}

/// Time one repetition of the flat ("after") pipeline. `DomainDecompAndSync`
/// is timed as the propagator actually runs it on a steady-state (non-reorder)
/// step: the reorder-interval decision is hoisted above any Morton-key work,
/// so the stage pays only the boundary wrap (a no-op here — Evrard is an open
/// box) and the tree rebuild, never per-step key generation.
fn after_rep(p: &mut ParticleSet, origin: &mut Vec<u32>, ws: &mut StepWorkspace, best: &mut [f64; 6]) {
    keep_min(best, 0, time(|| ws.domain_sync(p, origin, false, MAX_LEAF_SIZE)));
    keep_min(best, 1, time(|| ws.find_neighbors(p)));
    let lists = ws.neighbors();
    keep_min(best, 2, time(|| compute_density(p, lists)));
    keep_min(best, 3, time(|| compute_gradh(p, lists)));
    keep_min(best, 4, time(|| compute_div_curl(p, lists)));
    keep_min(best, 5, time(|| compute_momentum_energy(p, lists)));
}

fn main() {
    let n = env_usize("SPHSIM_BENCH_N", 50_000);
    let steps = env_usize("SPHSIM_BENCH_STEPS", 5).max(1);
    let scenario = sphsim::scenario::get("Evr").expect("built-in scenario");
    let initial = scenario.initial_conditions(n, 42);
    let n = initial.len();
    eprintln!("step_throughput: Evrard, {n} particles, {steps} reps per pipeline");

    // --- Before: construction order + Vec<Vec<usize>> + fresh tree ---------
    let mut pb = initial.clone();
    let mut tree = Octree::build(&pb.x, &pb.y, &pb.z, &pb.m, MAX_LEAF_SIZE);
    let mut nl = legacy::find_neighbors(&mut pb, &tree);
    legacy::compute_density(&mut pb, &nl);
    apply_eos(&mut pb);
    legacy::compute_gradh(&mut pb, &nl);
    let mut before = [f64::INFINITY; 6];
    for _ in 0..steps {
        before_rep(&mut pb, &mut tree, &mut nl, &mut before);
    }

    // --- After: Morton order + CSR + reusable workspace --------------------
    let mut pa = initial.clone();
    let mut origin: Vec<u32> = (0..pa.len() as u32).collect();
    let mut ws = StepWorkspace::new();
    ws.reorder_by_morton(&mut pa, &mut origin);
    ws.rebuild_tree(&pa, MAX_LEAF_SIZE);
    ws.find_neighbors(&mut pa);
    compute_density(&mut pa, ws.neighbors());
    apply_eos(&mut pa);
    compute_gradh(&mut pa, ws.neighbors());
    let mut after = [f64::INFINITY; 6];
    for _ in 0..steps {
        after_rep(&mut pa, &mut origin, &mut ws, &mut after);
    }

    let (nb_min, nb_mean, nb_max) = neighbor_count_stats(ws.neighbors());
    let pps = |seconds: f64| n as f64 / seconds;

    let mut stage_lines = Vec::new();
    println!(
        "{:<22} {:>14} {:>14} {:>8}",
        "stage", "before [p/s]", "after [p/s]", "speedup"
    );
    for (s, name) in STAGES.iter().enumerate() {
        let (b, a) = (pps(before[s]), pps(after[s]));
        println!("{name:<22} {b:>14.0} {a:>14.0} {:>7.2}x", a / b);
        stage_lines.push(format!(
            "    {{\"stage\": \"{name}\", \"before_pps\": {b:.1}, \"after_pps\": {a:.1}, \"speedup\": {:.3}}}",
            a / b
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"step_throughput\",\n  \"scenario\": \"Evr\",\n  \"particles\": {n},\n  \
         \"reps\": {steps},\n  \"note\": \"static-state stage timings, min over reps; before = \
         construction order + Vec-of-Vec lists + per-step tree alloc (tree uses today's splitter, \
         so the DomainDecompAndSync speedup is understated) with the pre-grad-h-fix averaged-h \
         momentum kernel, after = Morton order + CSR + reused workspace (reorder done once up \
         front) with the corrected per-particle-h kernel, hoisted reciprocals and the branch-free \
         min-image map (identity on this open box) — the MomentumEnergy row therefore mixes kernel \
         and data-path changes; DomainDecompAndSync times the propagator's real steady-state stage \
         (hoisted reorder-interval check: non-reorder steps skip Morton key generation, wrap is a \
         no-op for open boxes)\",\n  \"memory_bytes\": {mem},\n  \
         \"field_count\": {fields},\n  \"neighbors\": {{\"min\": {nb_min}, \"mean\": {nb_mean:.1}, \
         \"max\": {nb_max}}},\n  \"stages\": [\n{stages}\n  ]\n}}\n",
        mem = pa.memory_bytes(),
        fields = ParticleSet::field_count(),
        stages = stage_lines.join(",\n"),
    );

    let out_path = std::env::var("SPHSIM_BENCH_OUT")
        .map(|p| resolve_path(&p))
        .unwrap_or_else(|_| format!("{}/../../BENCH_step_throughput.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, &json).expect("write benchmark report");
    eprintln!("wrote {out_path}");

    // --- Regression gate: best-known per stage across baseline + history ---
    // Best-known starts from the committed baseline (if any) and is raised by
    // every history entry at this particle count, so the gate always measures
    // against the fastest run ever recorded — not just the last committed one.
    let mut best_known: [Option<f64>; 6] = [None; 6];
    let mut gate_sources = Vec::new();
    if let Ok(baseline_path) = std::env::var("SPHSIM_BENCH_BASELINE").map(|p| resolve_path(&p)) {
        let baseline = std::fs::read_to_string(&baseline_path).expect("read committed baseline");
        for (s, name) in STAGES.iter().enumerate() {
            match extract_after_pps(&baseline, name) {
                Some(base_pps) => best_known[s] = Some(base_pps),
                None => eprintln!("baseline {baseline_path} has no entry for {name}; skipping"),
            }
        }
        gate_sources.push(baseline_path);
    }
    let history_path = std::env::var("SPHSIM_BENCH_HISTORY").ok().map(|p| resolve_path(&p));
    if let Some(history_path) = &history_path {
        match std::fs::read_to_string(history_path) {
            Err(e) => eprintln!("history {history_path} unreadable ({e}); gating on baseline only"),
            Ok(history) => {
                let mut used = 0usize;
                for line in history.lines().filter(|l| !l.trim().is_empty()) {
                    if extract_particles(line) != Some(n) {
                        continue; // different problem size — not comparable
                    }
                    used += 1;
                    for (s, name) in STAGES.iter().enumerate() {
                        if let Some(hist_pps) = extract_after_pps(line, name) {
                            best_known[s] = Some(best_known[s].map_or(hist_pps, |b| b.max(hist_pps)));
                        }
                    }
                }
                gate_sources.push(format!("{history_path} ({used} comparable entries)"));
            }
        }
    }
    if !gate_sources.is_empty() {
        let tolerance: f64 = std::env::var("SPHSIM_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.75);
        let stage_floors = parse_stage_floors();
        let mut regressed = false;
        for (s, name) in STAGES.iter().enumerate() {
            let Some(best) = best_known[s] else { continue };
            let floor = stage_floors
                .iter()
                .find(|(stage, _)| stage == name)
                .map_or(tolerance, |&(_, ratio)| ratio);
            let current = pps(after[s]);
            if current < floor * best {
                eprintln!(
                    "REGRESSION: {name} runs at {current:.0} particles/s, below {:.0}% of the \
                     best-known {best:.0}",
                    floor * 100.0
                );
                regressed = true;
            }
        }
        if regressed {
            std::process::exit(1);
        }
        eprintln!(
            "no stage regressed below its floor (global {:.0}%{}) of best-known [{}]",
            tolerance * 100.0,
            if stage_floors.is_empty() {
                String::new()
            } else {
                format!(
                    ", overrides {}",
                    stage_floors
                        .iter()
                        .map(|(s, r)| format!("{s}:{r}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            },
            gate_sources.join(", ")
        );
    }

    // --- Trajectory append: one JSONL line per recorded run ----------------
    if let (Some(history_path), Ok(flag)) = (&history_path, std::env::var("SPHSIM_BENCH_HISTORY_APPEND")) {
        if flag == "1" {
            let label = std::env::var("SPHSIM_BENCH_LABEL").unwrap_or_else(|_| "local".to_string());
            let stages: Vec<String> = STAGES
                .iter()
                .enumerate()
                .map(|(s, name)| format!("{{\"stage\": \"{name}\", \"after_pps\": {:.1}}}", pps(after[s])))
                .collect();
            let line = format!(
                "{{\"benchmark\": \"step_throughput\", \"label\": \"{label}\", \"particles\": {n}, \
                 \"stages\": [{}]}}\n",
                stages.join(", ")
            );
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(history_path)
                .expect("open history for append");
            file.write_all(line.as_bytes()).expect("append history entry");
            eprintln!("appended run \"{label}\" to {history_path}");
        }
    }
}

/// Resolve an env-provided path. Cargo runs bench executables with CWD =
/// the package root (`crates/bench`), but CI and humans pass repo-root
/// relative paths — anchor those at the workspace root unless they already
/// resolve where we stand.
fn resolve_path(path: &str) -> String {
    let p = std::path::Path::new(path);
    if p.is_absolute() || p.exists() {
        return path.to_string();
    }
    format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
}

/// Parse `SPHSIM_BENCH_STAGE_FLOOR` (`Stage:ratio,Stage:ratio`). Stage names
/// must match [`STAGES`] exactly — a typo aborts rather than silently
/// leaving a stage on the looser global tolerance.
fn parse_stage_floors() -> Vec<(String, f64)> {
    let Ok(spec) = std::env::var("SPHSIM_BENCH_STAGE_FLOOR") else {
        return Vec::new();
    };
    let mut floors = Vec::new();
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let Some((stage, ratio)) = entry.split_once(':') else {
            panic!("SPHSIM_BENCH_STAGE_FLOOR entry {entry:?} is not Stage:ratio");
        };
        let stage = stage.trim();
        assert!(
            STAGES.contains(&stage),
            "SPHSIM_BENCH_STAGE_FLOOR names unknown stage {stage:?} (stages: {STAGES:?})"
        );
        let ratio: f64 = ratio
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("SPHSIM_BENCH_STAGE_FLOOR ratio for {stage}: {e}"));
        floors.push((stage.to_string(), ratio));
    }
    floors
}

/// Pull the `particles` count out of one history line.
fn extract_particles(line: &str) -> Option<usize> {
    let key = "\"particles\": ";
    let v = &line[line.find(key)? + key.len()..];
    let end = v.find([',', '}'])?;
    v[..end].trim().parse().ok()
}

/// Pull `after_pps` for `stage` out of a committed report (line-oriented,
/// written by this binary — no JSON dependency needed offline).
fn extract_after_pps(report: &str, stage: &str) -> Option<f64> {
    let at = report.find(&format!("\"stage\": \"{stage}\""))?;
    let rest = &report[at..];
    let key = "\"after_pps\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find([',', '}'])?;
    v[..end].trim().parse().ok()
}
