//! The pre-refactor ("before") SPH neighbour pipeline, preserved for the
//! `step_throughput` before/after benchmark.
//!
//! Until the flat-path refactor, `sphsim` materialised neighbour lists as
//! `Vec<Vec<usize>>` — one heap allocation (plus growth reallocations) per
//! particle per step — rebuilt the octree into a freshly allocated arena every
//! step, and streamed particles in construction order with no spatial
//! locality. This module keeps the neighbour-list and kernel data path alive
//! verbatim as the benchmark baseline. One caveat: the baseline's *tree build*
//! goes through today's `Octree::build` (fresh arena each step, but the new
//! iterative splitter — the old recursive 8-`Vec`-per-node splitter is gone),
//! so the reported `DomainDecompAndSync` speedup understates the true
//! before/after gap. Production code in `sphsim` uses the CSR + Morton +
//! workspace pipeline instead.

use sphsim::kernels::{dwdh_cubic, grad_w_cubic, w_cubic, KERNEL_SUPPORT};
use sphsim::parallel::parallel_map;
use sphsim::{Octree, ParticleSet};

/// Per-particle neighbour lists in the old one-`Vec`-per-particle layout.
#[derive(Clone, Debug, Default)]
pub struct VecNeighborLists {
    /// `lists[i]` holds the indices of the particles within `2 h_i` of
    /// particle `i` (including `i` itself).
    pub lists: Vec<Vec<usize>>,
}

/// The old `FindNeighbors` stage: one freshly allocated `Vec` per particle,
/// followed by a serial post-pass writing the neighbour-count diagnostic.
pub fn find_neighbors(particles: &mut ParticleSet, tree: &Octree) -> VecNeighborLists {
    let n = particles.len();
    let lists: Vec<Vec<usize>> = parallel_map(n, |i| {
        let mut out = Vec::new();
        let radius = KERNEL_SUPPORT * particles.h[i];
        tree.neighbors_within(
            (particles.x[i], particles.y[i], particles.z[i]),
            radius,
            &particles.x,
            &particles.y,
            &particles.z,
            &mut out,
        );
        out
    });
    for (i, list) in lists.iter().enumerate() {
        particles.neighbor_count[i] = list.len().saturating_sub(1) as u32;
    }
    VecNeighborLists { lists }
}

/// The old `XMass` density summation over `Vec<Vec<usize>>` lists.
pub fn compute_density(particles: &mut ParticleSet, neighbors: &VecNeighborLists) {
    let n = particles.len();
    let rho: Vec<f64> = parallel_map(n, |i| {
        let hi = particles.h[i];
        let mut sum = 0.0;
        for &j in &neighbors.lists[i] {
            let dx = particles.x[i] - particles.x[j];
            let dy = particles.y[i] - particles.y[j];
            let dz = particles.z[i] - particles.z[j];
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            sum += particles.m[j] * w_cubic(r, hi);
        }
        sum
    });
    particles.rho = rho;
}

/// The old `NormalizationGradh` stage over `Vec<Vec<usize>>` lists.
pub fn compute_gradh(particles: &mut ParticleSet, neighbors: &VecNeighborLists) {
    let n = particles.len();
    let omega: Vec<f64> = parallel_map(n, |i| {
        let hi = particles.h[i];
        let rho_i = particles.rho[i].max(1e-30);
        let mut sum = 0.0;
        for &j in &neighbors.lists[i] {
            let dx = particles.x[i] - particles.x[j];
            let dy = particles.y[i] - particles.y[j];
            let dz = particles.z[i] - particles.z[j];
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            sum += particles.m[j] * dwdh_cubic(r, hi);
        }
        (1.0 + hi / (3.0 * rho_i) * sum).clamp(0.2, 5.0)
    });
    particles.omega = omega;
}

/// The old `IADVelocityDivCurl` stage over `Vec<Vec<usize>>` lists.
pub fn compute_div_curl(particles: &mut ParticleSet, neighbors: &VecNeighborLists) {
    let n = particles.len();
    let results: Vec<(f64, f64)> = parallel_map(n, |i| {
        let hi = particles.h[i];
        let rho_i = particles.rho[i].max(1e-30);
        let mut div = 0.0;
        let mut curl = (0.0, 0.0, 0.0);
        for &j in &neighbors.lists[i] {
            if j == i {
                continue;
            }
            let dx = particles.x[i] - particles.x[j];
            let dy = particles.y[i] - particles.y[j];
            let dz = particles.z[i] - particles.z[j];
            let dvx = particles.vx[i] - particles.vx[j];
            let dvy = particles.vy[i] - particles.vy[j];
            let dvz = particles.vz[i] - particles.vz[j];
            let (gx, gy, gz) = grad_w_cubic(dx, dy, dz, hi);
            let mj = particles.m[j];
            div -= mj * (dvx * gx + dvy * gy + dvz * gz);
            curl.0 -= mj * (dvy * gz - dvz * gy);
            curl.1 -= mj * (dvz * gx - dvx * gz);
            curl.2 -= mj * (dvx * gy - dvy * gx);
        }
        let curl_mag = (curl.0 * curl.0 + curl.1 * curl.1 + curl.2 * curl.2).sqrt() / rho_i;
        (div / rho_i, curl_mag)
    });
    for (i, (div, curl)) in results.into_iter().enumerate() {
        particles.div_v[i] = div;
        particles.curl_v[i] = curl;
    }
}

/// The old `MomentumEnergy` stage over `Vec<Vec<usize>>` lists.
pub fn compute_momentum_energy(particles: &mut ParticleSet, neighbors: &VecNeighborLists) {
    let n = particles.len();
    let results: Vec<(f64, f64, f64, f64)> = parallel_map(n, |i| {
        let rho_i = particles.rho[i].max(1e-30);
        let p_over_rho2_i = particles.p[i] / (particles.omega[i] * rho_i * rho_i);
        let mut acc = (0.0, 0.0, 0.0);
        let mut du = 0.0;
        for &j in &neighbors.lists[i] {
            if j == i {
                continue;
            }
            let dx = particles.x[i] - particles.x[j];
            let dy = particles.y[i] - particles.y[j];
            let dz = particles.z[i] - particles.z[j];
            let dvx = particles.vx[i] - particles.vx[j];
            let dvy = particles.vy[i] - particles.vy[j];
            let dvz = particles.vz[i] - particles.vz[j];
            let h_ij = 0.5 * (particles.h[i] + particles.h[j]);
            let (gx, gy, gz) = grad_w_cubic(dx, dy, dz, h_ij);
            let rho_j = particles.rho[j].max(1e-30);
            let p_over_rho2_j = particles.p[j] / (particles.omega[j] * rho_j * rho_j);
            let v_dot_r = dvx * dx + dvy * dy + dvz * dz;
            let visc = if v_dot_r < 0.0 {
                let r2 = dx * dx + dy * dy + dz * dz;
                let mu = h_ij * v_dot_r / (r2 + 0.01 * h_ij * h_ij);
                let c_ij = 0.5 * (particles.c[i] + particles.c[j]);
                let rho_ij = 0.5 * (rho_i + rho_j);
                let alpha_ij = 0.5 * (particles.alpha[i] + particles.alpha[j]);
                (-alpha_ij * c_ij * mu + 2.0 * alpha_ij * mu * mu) / rho_ij
            } else {
                0.0
            };
            let mj = particles.m[j];
            let term = p_over_rho2_i + p_over_rho2_j + visc;
            acc.0 -= mj * term * gx;
            acc.1 -= mj * term * gy;
            acc.2 -= mj * term * gz;
            du += mj * (p_over_rho2_i + 0.5 * visc) * (dvx * gx + dvy * gy + dvz * gz);
        }
        (acc.0, acc.1, acc.2, du)
    });
    for (i, (ax, ay, az, du)) in results.into_iter().enumerate() {
        particles.ax[i] = ax;
        particles.ay[i] = ay;
        particles.az[i] = az;
        particles.du[i] = du;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sphsim::init::lattice_cube;
    use sphsim::physics::neighbors::{build_tree, find_neighbors as csr_find_neighbors};

    #[test]
    fn legacy_pipeline_matches_the_csr_pipeline() {
        let mut a = lattice_cube(6, 1.0, 1.0, 1.3);
        let mut b = a.clone();
        let tree = build_tree(&a, 16);

        let legacy_nl = find_neighbors(&mut a, &tree);
        compute_density(&mut a, &legacy_nl);
        compute_gradh(&mut a, &legacy_nl);
        sphsim::physics::eos::apply_eos(&mut a);
        compute_div_curl(&mut a, &legacy_nl);
        compute_momentum_energy(&mut a, &legacy_nl);

        let csr_nl = csr_find_neighbors(&mut b, &tree);
        sphsim::physics::density::compute_density(&mut b, &csr_nl);
        sphsim::physics::gradh::compute_gradh(&mut b, &csr_nl);
        sphsim::physics::eos::apply_eos(&mut b);
        sphsim::physics::iad::compute_div_curl(&mut b, &csr_nl);
        sphsim::physics::momentum::compute_momentum_energy(&mut b, &csr_nl);

        for i in 0..a.len() {
            assert_eq!(legacy_nl.lists[i].len(), csr_nl.count(i), "row {i} length");
            assert_eq!(a.neighbor_count[i], b.neighbor_count[i]);
            assert!((a.rho[i] - b.rho[i]).abs() < 1e-13, "rho {i}");
            assert!((a.omega[i] - b.omega[i]).abs() < 1e-13, "omega {i}");
            assert!((a.div_v[i] - b.div_v[i]).abs() < 1e-13, "div {i}");
            assert!((a.ax[i] - b.ax[i]).abs() < 1e-12, "ax {i}");
            assert!((a.du[i] - b.du[i]).abs() < 1e-12, "du {i}");
        }
    }
}
