//! Shared helpers for the Criterion benchmark suite.
//!
//! One bench target exists per paper table/figure (`table1_scenarios`,
//! `fig1_validation`, ..., `fig5_function_edp`) plus micro-benchmarks of the
//! hot measurement and simulation paths (`energy_integration`,
//! `sensor_sampling`, `octree`, `sph_kernels`) and the before/after
//! `step_throughput` benchmark of the flattened SPH hot path (see [`legacy`]).

use hwmodel::arch::SystemKind;
use slurm::AcctGatherEnergyType;
use sphsim::{run_campaign, CampaignConfig, CampaignResult, ScenarioRef};

pub mod legacy;

/// Look up a built-in scenario by name (panicking helper for benches).
pub fn bench_scenario(name: &str) -> ScenarioRef {
    sphsim::scenario::get(name).expect("built-in scenario")
}

/// A reduced-size campaign configuration suitable for benchmarking: the same
/// code path as the paper-scale experiments, small enough to iterate quickly.
pub fn bench_campaign_config(system: SystemKind, scenario: ScenarioRef, ranks: usize, steps: u64) -> CampaignConfig {
    CampaignConfig {
        system,
        scenario,
        n_ranks: ranks,
        particles_per_rank: 10.0e6,
        timesteps: steps,
        gpu_frequency_hz: None,
        setup_seconds: 10.0,
        teardown_seconds: 2.0,
        slurm_backend: AcctGatherEnergyType::PmCounters,
    }
}

/// Run a reduced campaign (helper shared by the per-figure benches).
pub fn run_bench_campaign(system: SystemKind, scenario: ScenarioRef, ranks: usize, steps: u64) -> CampaignResult {
    run_campaign(&bench_campaign_config(system, scenario, ranks, steps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_campaign_runs() {
        let result = run_bench_campaign(SystemKind::CscsA100, bench_scenario("Turb"), 2, 2);
        assert_eq!(result.n_ranks(), 2);
        assert!(result.true_main_loop_energy_j > 0.0);
    }
}
