//! # cluster — simulated multi-node, multi-rank runtime
//!
//! The paper runs SPH-EXA with MPI across many CPU+GPU nodes (up to 48 GPU
//! cards) and measures energy **per MPI rank**. This crate provides the
//! runtime substrate for reproducing that setup on one machine:
//!
//! * [`topology`] — a [`Cluster`](topology::Cluster): N simulated nodes of one
//!   architecture sharing one simulated clock;
//! * [`mapping`] — the rank-to-GPU assignment rules, including the MI250X
//!   "one rank drives a GCD but `pm_counters` reports per card" quirk (§2);
//! * [`sensors`] — adapters plugging the simulated hardware into the `pmt`
//!   measurement back-ends: an NVML-like and a ROCm-SMI-like API over simulated
//!   GPUs, a `pm_counters`-equivalent in-memory node sensor, and a
//!   `pmt::Clock` over the simulated clock;
//! * [`comm`] — a tiny MPI-like communicator (barrier, gather, all-reduce)
//!   over threads, used to gather per-rank measurement reports;
//! * [`job`] — a launcher that runs one closure per rank on its own thread,
//!   with its rank context (node, GPU, communicator).

pub mod comm;
pub mod job;
pub mod mapping;
pub mod sensors;
pub mod topology;

pub use comm::{CollectiveKind, Comm, CommStatsRow, CommStatsSnapshot, CommWorld};
pub use job::{run_ranks, RankContext};
pub use mapping::{RankMapping, RankPlacement};
pub use sensors::{GpuDiePowerSensor, SimClockAdapter, SimNodeSensor, SimNvmlApi, SimRocmSmiApi};
pub use topology::Cluster;
