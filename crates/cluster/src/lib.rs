//! # cluster — simulated multi-node, multi-rank runtime
//!
//! The paper runs SPH-EXA with MPI across many CPU+GPU nodes (up to 48 GPU
//! cards) and measures energy **per MPI rank**. This crate provides the
//! runtime substrate for reproducing that setup on one machine:
//!
//! * [`topology`] — a [`Cluster`](topology::Cluster): N simulated nodes of one
//!   architecture sharing one simulated clock;
//! * [`mapping`] — the rank-to-GPU assignment rules, including the MI250X
//!   "one rank drives a GCD but `pm_counters` reports per card" quirk (§2);
//! * [`sensors`] — adapters plugging the simulated hardware into the `pmt`
//!   measurement back-ends: an NVML-like and a ROCm-SMI-like API over simulated
//!   GPUs, a `pm_counters`-equivalent in-memory node sensor, and a
//!   `pmt::Clock` over the simulated clock;
//! * [`comm`] — a tiny MPI-like communicator (barrier, gather, all-reduce,
//!   nonblocking isend/irecv) used to gather per-rank measurement reports;
//! * [`transport`] — the pluggable byte-movers underneath [`comm::Comm`]:
//!   in-process shared-memory channels or a real Unix-socket/TCP mesh with a
//!   hand-rolled length-prefixed wire codec;
//! * [`job`] — a launcher that runs one closure per rank on its own thread,
//!   with its rank context (node, GPU, communicator).

pub mod comm;
pub mod job;
pub mod mapping;
pub mod sensors;
pub mod topology;
pub mod transport;

pub use comm::{CollectiveKind, Comm, CommError, CommStatsRow, CommStatsSnapshot, CommWorld, RecvHandle, SendHandle};
pub use job::{run_ranks, run_ranks_with, RankContext};
pub use mapping::{RankMapping, RankPlacement};
pub use sensors::{GpuDiePowerSensor, SimClockAdapter, SimNodeSensor, SimNvmlApi, SimRocmSmiApi};
pub use topology::Cluster;
pub use transport::wire::{Wire, WireError, WireReader};
pub use transport::TransportKind;
