//! Rank launcher: run one closure per rank, each on its own thread, with the
//! rank's hardware context and communicator.

use crate::comm::{Comm, CommWorld};
use crate::mapping::{RankMapping, RankPlacement};
use crate::topology::Cluster;
use crate::transport::TransportKind;
use hwmodel::{GpuHandle, Node, SimClock};

/// Everything a rank function needs: identity, placement, hardware handles and
/// the communicator.
pub struct RankContext {
    /// Global rank id.
    pub rank: u32,
    /// Total number of ranks.
    pub size: u32,
    /// Placement information (node, die, card sharing).
    pub placement: RankPlacement,
    /// The node this rank runs on (shared handle).
    pub node: Node,
    /// The GPU die this rank drives (shared handle).
    pub gpu: GpuHandle,
    /// The cluster-wide simulated clock.
    pub clock: SimClock,
    /// MPI-like communicator.
    pub comm: Comm,
}

/// Run `f` once per rank of `mapping`, each on its own OS thread, and return
/// the per-rank results in rank order.
///
/// The closure receives a [`RankContext`]; it may use the communicator for
/// barriers/gathers exactly like an MPI program would.
pub fn run_ranks<T, F>(cluster: &Cluster, mapping: &RankMapping, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(RankContext) -> T + Sync,
{
    run_ranks_with(cluster, mapping, TransportKind::Shm, f)
}

/// [`run_ranks`] over an explicit transport backend: `Shm` keeps the original
/// in-process channels; `Socket` gives every rank thread a real Unix-socket
/// connection to its peers (the `--transport socket` experiment axis).
pub fn run_ranks_with<T, F>(cluster: &Cluster, mapping: &RankMapping, transport: TransportKind, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(RankContext) -> T + Sync,
{
    let n = mapping.n_ranks();
    let comms = CommWorld::create_with(n, transport);
    let mut contexts: Vec<RankContext> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let placement = mapping.placement(rank as u32).expect("placement missing").clone();
            let node = cluster.node(placement.node_index).clone();
            let gpu = node.gpu(placement.gpu_die).expect("GPU die missing").clone();
            RankContext {
                rank: rank as u32,
                size: n as u32,
                placement,
                node,
                gpu,
                clock: cluster.clock().clone(),
                comm,
            }
        })
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = contexts.drain(..).map(|ctx| scope.spawn(|| f(ctx))).collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch::SystemKind;
    use hwmodel::device::PowerDevice;

    #[test]
    fn ranks_see_their_own_gpu() {
        let cluster = Cluster::new(SystemKind::CscsA100, 2);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let results = run_ranks(&cluster, &mapping, |ctx| {
            (ctx.rank, ctx.placement.node_index, ctx.gpu.index())
        });
        assert_eq!(results.len(), 8);
        assert_eq!(results[0], (0, 0, 0));
        assert_eq!(results[5], (5, 1, 1));
    }

    #[test]
    fn ranks_can_use_collectives() {
        let cluster = Cluster::new(SystemKind::MiniHpc, 1);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let results = run_ranks(&cluster, &mapping, |ctx| {
            ctx.comm.barrier();
            ctx.comm.allreduce_sum(1.0)
        });
        assert!(results.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn rank_loads_accumulate_on_shared_nodes() {
        let cluster = Cluster::new(SystemKind::LumiG, 1);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        run_ranks(&cluster, &mapping, |ctx| {
            ctx.gpu.set_load(1.0);
        });
        // All 8 GCDs were set busy by their ranks.
        let busy: usize = cluster.node(0).gpus().iter().filter(|g| g.occupancy() > 0.0).count();
        assert_eq!(busy, 8);
        cluster.advance(1.0);
        assert!(cluster.node(0).gpus().iter().all(|g| g.energy_j() > 0.0));
    }

    #[test]
    fn gather_reports_to_rank_zero() {
        let cluster = Cluster::new(SystemKind::CscsA100, 1);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        let results = run_ranks(&cluster, &mapping, |ctx| {
            let hostname = ctx.node.hostname().to_string();
            ctx.comm.gather(hostname, 0).map(|v| v.len())
        });
        assert_eq!(results[0], Some(4));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }
}
