//! Adapters between the simulated hardware (`hwmodel`) and the measurement
//! toolkit (`pmt`).
//!
//! | Adapter | Implements | Backed by |
//! |---|---|---|
//! | [`SimClockAdapter`] | `pmt::Clock` | `hwmodel::SimClock` |
//! | [`SimNvmlApi`] | `pmt::backends::NvmlApi` | the node's NVIDIA GPU dies |
//! | [`SimRocmSmiApi`] | `pmt::backends::RocmSmiApi` | the node's AMD GCDs |
//! | [`SimNodeSensor`] | `pmt::Sensor` | node / CPU / memory / GPU-card counters, i.e. an in-memory equivalent of Cray `pm_counters` |
//!
//! Together with the file-based back-ends reading `hwmodel::VirtualSysfs`
//! trees, these adapters let the *same* `pmt` measurement code run against the
//! simulator that would run against real hardware.

use hwmodel::device::{DeviceKind, PowerDevice};
use hwmodel::gpu::GpuVendor;
use hwmodel::{Node, SimClock};
use pmt::backends::nvml::NvmlApi;
use pmt::backends::rocm::RocmSmiApi;
use pmt::clock::Clock;
use pmt::{Domain, DomainSample, PmtError, Sensor};

/// `pmt::Clock` implementation over the shared simulated clock.
#[derive(Clone)]
pub struct SimClockAdapter {
    clock: SimClock,
}

impl SimClockAdapter {
    /// Wrap a simulated clock.
    pub fn new(clock: SimClock) -> Self {
        Self { clock }
    }
}

impl Clock for SimClockAdapter {
    fn now_s(&self) -> f64 {
        self.clock.now()
    }
}

/// NVML-like API over the NVIDIA GPU dies of one simulated node.
pub struct SimNvmlApi {
    node: Node,
}

impl SimNvmlApi {
    /// Create the adapter. Returns `None` if the node has no NVIDIA GPUs.
    pub fn new(node: Node) -> Option<Self> {
        let has_nvidia = node.gpus().iter().any(|g| g.spec().vendor == GpuVendor::Nvidia);
        has_nvidia.then_some(Self { node })
    }

    fn gpu(&self, index: u32) -> pmt::Result<&hwmodel::GpuHandle> {
        self.node
            .gpus()
            .get(index as usize)
            .ok_or_else(|| PmtError::UnknownDomain(format!("gpu{index}")))
    }
}

impl NvmlApi for SimNvmlApi {
    fn device_count(&self) -> u32 {
        self.node.gpus().len() as u32
    }

    fn power_usage_mw(&self, index: u32) -> pmt::Result<u64> {
        Ok((self.gpu(index)?.power_w() * 1.0e3).round() as u64)
    }

    fn total_energy_consumption_mj(&self, index: u32) -> pmt::Result<u64> {
        Ok((self.gpu(index)?.energy_j() * 1.0e3).round() as u64)
    }
}

/// ROCm-SMI-like API over the AMD GCDs of one simulated node.
pub struct SimRocmSmiApi {
    node: Node,
}

impl SimRocmSmiApi {
    /// Create the adapter. Returns `None` if the node has no AMD GPUs.
    pub fn new(node: Node) -> Option<Self> {
        let has_amd = node.gpus().iter().any(|g| g.spec().vendor == GpuVendor::Amd);
        has_amd.then_some(Self { node })
    }

    fn gpu(&self, index: u32) -> pmt::Result<&hwmodel::GpuHandle> {
        self.node
            .gpus()
            .get(index as usize)
            .ok_or_else(|| PmtError::UnknownDomain(format!("gcd{index}")))
    }
}

impl RocmSmiApi for SimRocmSmiApi {
    fn device_count(&self) -> u32 {
        self.node.gpus().len() as u32
    }

    fn power_ave_uw(&self, index: u32) -> pmt::Result<u64> {
        Ok((self.gpu(index)?.power_w() * 1.0e6).round() as u64)
    }

    fn energy_count_uj(&self, index: u32) -> pmt::Result<u64> {
        Ok((self.gpu(index)?.energy_j() * 1.0e6).round() as u64)
    }
}

/// Granularity at which GPU energy is exposed by a node-level sensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuGranularity {
    /// One domain per physical card (Cray `pm_counters` behaviour; two GCDs
    /// share one domain on MI250X).
    Card,
    /// One domain per die (what NVML/ROCm report).
    Die,
}

/// An in-memory `pmt::Sensor` exposing the same domains as Cray `pm_counters`:
/// node, CPU, memory (if the platform has a memory sensor) and GPU cards —
/// without going through the filesystem. Used for the large experiment
/// campaigns where writing/reading a virtual sysfs on every poll would only add
/// overhead; the file-based path is exercised separately in tests and examples.
pub struct SimNodeSensor {
    node: Node,
    granularity: GpuGranularity,
}

impl SimNodeSensor {
    /// Create a sensor over `node` reporting GPUs per physical card
    /// (the `pm_counters` convention).
    pub fn per_card(node: Node) -> Self {
        Self {
            node,
            granularity: GpuGranularity::Card,
        }
    }

    /// Create a sensor over `node` reporting GPUs per die.
    pub fn per_die(node: Node) -> Self {
        Self {
            node,
            granularity: GpuGranularity::Die,
        }
    }

    /// The granularity of the GPU domains.
    pub fn granularity(&self) -> GpuGranularity {
        self.granularity
    }
}

impl Sensor for SimNodeSensor {
    fn name(&self) -> &str {
        "sim_node"
    }

    fn domains(&self) -> Vec<Domain> {
        let mut out = vec![Domain::node(), Domain::cpu(0)];
        if self.node.spec().has_memory_sensor {
            out.push(Domain::memory());
        }
        match self.granularity {
            GpuGranularity::Card => {
                for card in 0..self.node.spec().gpu_cards() {
                    out.push(Domain::gpu_card(card as u32));
                }
            }
            GpuGranularity::Die => {
                for die in 0..self.node.gpus().len() {
                    out.push(Domain::gpu(die as u32));
                }
            }
        }
        out
    }

    fn sample(&self) -> pmt::Result<Vec<DomainSample>> {
        let node = &self.node;
        let mut out = Vec::new();
        out.push(DomainSample::both(Domain::node(), node.power_w(), node.energy_j()));
        out.push(DomainSample::both(
            Domain::cpu(0),
            node.power_by_kind_w(DeviceKind::Cpu),
            node.energy_by_kind_j(DeviceKind::Cpu),
        ));
        if node.spec().has_memory_sensor {
            out.push(DomainSample::both(
                Domain::memory(),
                node.power_by_kind_w(DeviceKind::Memory),
                node.energy_by_kind_j(DeviceKind::Memory),
            ));
        }
        match self.granularity {
            GpuGranularity::Card => {
                for card in 0..node.spec().gpu_cards() {
                    out.push(DomainSample::both(
                        Domain::gpu_card(card as u32),
                        node.card_power_w(card),
                        node.card_energy_j(card),
                    ));
                }
            }
            GpuGranularity::Die => {
                for (die, gpu) in node.gpus().iter().enumerate() {
                    out.push(DomainSample::both(
                        Domain::gpu(die as u32),
                        gpu.power_w(),
                        gpu.energy_j(),
                    ));
                }
            }
        }
        Ok(out)
    }

    fn description(&self) -> String {
        format!(
            "sim_node over {} ({:?} GPU granularity)",
            self.node.hostname(),
            self.granularity
        )
    }
}

/// A power-only `pmt::Sensor` over one simulated GPU die.
///
/// Unlike [`SimNodeSensor`], which reads the cumulative energy counters of
/// simulated hardware driven by a simulated clock, this sensor reports only
/// the die's *instantaneous modelled power* (a function of its current
/// occupancy and compute frequency). Paired with a wall clock, the meter's
/// trapezoidal integration turns it into modelled-power × real-elapsed-time
/// energy — which is how the distributed CPU-executed runs attribute per-rank
/// per-stage energy while an `autotune` governor retunes the die's frequency
/// between stages.
pub struct GpuDiePowerSensor {
    gpu: hwmodel::GpuHandle,
}

impl GpuDiePowerSensor {
    /// Wrap one GPU die handle.
    pub fn new(gpu: hwmodel::GpuHandle) -> Self {
        Self { gpu }
    }
}

impl Sensor for GpuDiePowerSensor {
    fn name(&self) -> &str {
        "sim_gpu_die_power"
    }

    fn domains(&self) -> Vec<Domain> {
        vec![Domain::gpu(self.gpu.index() as u32)]
    }

    fn sample(&self) -> pmt::Result<Vec<DomainSample>> {
        Ok(vec![DomainSample::power(
            Domain::gpu(self.gpu.index() as u32),
            self.gpu.power_w(),
        )])
    }

    fn description(&self) -> String {
        format!(
            "sim_gpu_die_power over die {} ({})",
            self.gpu.index(),
            self.gpu.spec().name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch::{self, SystemKind};
    use pmt::backends::{NvmlSensor, RocmSmiSensor};
    use pmt::{DomainKind, PowerMeter};
    use std::sync::Arc;

    #[test]
    fn clock_adapter_follows_sim_clock() {
        let sim = SimClock::new();
        let adapter = SimClockAdapter::new(sim.clone());
        sim.advance(3.5);
        assert_eq!(adapter.now_s(), 3.5);
    }

    #[test]
    fn nvml_adapter_only_for_nvidia_nodes() {
        assert!(SimNvmlApi::new(arch::cscs_a100().build()).is_some());
        assert!(SimNvmlApi::new(arch::lumi_g().build()).is_none());
        assert!(SimRocmSmiApi::new(arch::lumi_g().build()).is_some());
        assert!(SimRocmSmiApi::new(arch::mini_hpc().build()).is_none());
    }

    #[test]
    fn nvml_sensor_reads_simulated_gpu() {
        let node = arch::cscs_a100().build();
        node.gpus()[0].set_load(1.0);
        node.advance(10.0);
        let api = Arc::new(SimNvmlApi::new(node.clone()).unwrap());
        let sensor = NvmlSensor::new(api).unwrap();
        let samples = sensor.sample().unwrap();
        assert_eq!(samples.len(), 4);
        // GPU 0 is at full load -> ~400 W and > 0 J.
        assert!(samples[0].power_w.unwrap() > 300.0);
        assert!(samples[0].energy_j.unwrap() > 1000.0);
        // GPU 1 is idle.
        assert!(samples[1].power_w.unwrap() < 100.0);
    }

    #[test]
    fn rocm_sensor_reads_simulated_gcds() {
        let node = arch::lumi_g().build();
        node.gpus()[3].set_load(0.8);
        node.advance(5.0);
        let api = Arc::new(SimRocmSmiApi::new(node).unwrap());
        let sensor = RocmSmiSensor::new(api).unwrap();
        let samples = sensor.sample().unwrap();
        assert_eq!(samples.len(), 8);
        assert!(samples[3].power_w.unwrap() > samples[0].power_w.unwrap());
    }

    #[test]
    fn node_sensor_card_granularity_matches_pm_counters() {
        let node = arch::lumi_g().build();
        let sensor = SimNodeSensor::per_card(node);
        let domains = sensor.domains();
        // node + cpu + mem + 4 cards
        assert_eq!(domains.len(), 7);
        assert!(domains.iter().any(|d| d.kind == DomainKind::GpuCard));
        assert!(!domains.iter().any(|d| d.kind == DomainKind::Gpu));
    }

    #[test]
    fn node_sensor_omits_memory_when_absent() {
        let node = arch::cscs_a100().build();
        let sensor = SimNodeSensor::per_card(node);
        assert!(!sensor.domains().iter().any(|d| d.kind == DomainKind::Memory));
    }

    #[test]
    fn die_power_sensor_tracks_load_and_frequency() {
        let node = arch::mini_hpc().build();
        let gpu = node.gpus()[0].clone();
        let sensor = GpuDiePowerSensor::new(gpu.clone());
        assert_eq!(sensor.domains(), vec![Domain::gpu(0)]);
        let idle = sensor.sample().unwrap()[0].power_w.unwrap();
        gpu.set_load(1.0);
        let busy = sensor.sample().unwrap()[0].power_w.unwrap();
        assert!(busy > idle, "busy {busy} W should exceed idle {idle} W");
        // Down-clocking the die lowers its modelled power.
        let f_min = gpu.spec().dvfs.f_min_hz;
        gpu.set_compute_frequency(f_min);
        let slow = sensor.sample().unwrap()[0].power_w.unwrap();
        assert!(slow < busy, "down-clocked {slow} W should be below nominal {busy} W");
        // The sample is power-only: energy comes from clock integration.
        assert!(sensor.sample().unwrap()[0].energy_j.is_none());
    }

    #[test]
    fn meter_over_node_sensor_measures_region_energy() {
        let cluster = crate::topology::Cluster::new(SystemKind::CscsA100, 1);
        let node = cluster.node(0).clone();
        let meter = PowerMeter::builder()
            .sensor(SimNodeSensor::per_card(node.clone()))
            .clock(SimClockAdapter::new(cluster.clock().clone()))
            .build();
        meter.start_region("step").unwrap();
        for g in node.gpus() {
            g.set_load(1.0);
        }
        cluster.advance(10.0);
        let record = meter.end_region("step").unwrap();
        // Four A100s at ~400 W for 10 s ≈ 16 kJ of GPU-card energy.
        let gpu_energy = record.energy_by_kind(DomainKind::GpuCard);
        assert!((12_000.0..20_000.0).contains(&gpu_energy), "gpu energy {gpu_energy}");
        let node_energy = record.energy(Domain::node());
        assert!(node_energy > gpu_energy);
    }
}
