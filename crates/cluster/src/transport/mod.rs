//! Pluggable transports underneath [`crate::comm::Comm`].
//!
//! `Comm` owns the MPI-flavoured semantics — envelope matching per sender,
//! collectives, the pending queue that fixes the cross-collective race — and
//! delegates the actual byte movement to a [`Transport`]:
//!
//! * [`shm::ShmTransport`] — the original in-process channels; payloads
//!   travel as boxed `Any` values, no serialisation.
//! * [`socket::SocketTransport`] — real OS transports (Unix domain sockets
//!   or TCP) between ranks that may live in different processes; payloads
//!   travel through the hand-rolled length-prefixed [`wire`] codec.
//!
//! Both preserve per-sender FIFO ordering, which together with `Comm`'s
//! `(source, class)` envelope matching keeps interleaved collectives and
//! point-to-point traffic from ever cross-talking.

pub mod shm;
pub mod socket;
pub mod wire;

use std::any::Any;
use std::fmt;

/// Which backend a [`crate::comm::CommWorld`] builds its ranks on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process shared-memory channels (ranks are threads).
    Shm,
    /// Unix-domain or TCP sockets (ranks may be separate OS processes).
    Socket,
}

impl TransportKind {
    /// Stable lowercase name — the `--transport` CLI value and the
    /// `comm.<backend>.*` telemetry segment.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Shm => "shm",
            TransportKind::Socket => "socket",
        }
    }

    /// Parse a `--transport` CLI value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shm" => Some(TransportKind::Shm),
            "socket" => Some(TransportKind::Socket),
            _ => None,
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Traffic class of a message. `Comm` matches envelopes on
/// `(source, class)`, so collective rounds and in-flight nonblocking
/// point-to-point transfers from the same sender can interleave freely
/// without stealing each other's payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Part of a collective (gather/broadcast/... round).
    Collective,
    /// An explicit `isend`/`irecv` transfer.
    P2p,
}

impl MsgClass {
    pub(crate) fn wire_tag(self) -> u8 {
        match self {
            MsgClass::Collective => 0,
            MsgClass::P2p => 1,
        }
    }

    pub(crate) fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MsgClass::Collective),
            1 => Some(MsgClass::P2p),
            _ => None,
        }
    }
}

/// A message payload in transit. The shm backend ships values as boxed
/// `Any` (zero-copy within the process); the socket backend ships encoded
/// bytes. [`Transport::local_frames`] tells `Comm` which to produce.
pub enum Frame {
    /// In-process payload: the value itself, boxed.
    Local(Box<dyn Any + Send>),
    /// Cross-process payload: a complete wire-codec encoding.
    Bytes(Vec<u8>),
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frame::Local(_) => f.write_str("Frame::Local(..)"),
            Frame::Bytes(b) => write!(f, "Frame::Bytes({} bytes)", b.len()),
        }
    }
}

/// One received message: who sent it, on which class, and its payload.
#[derive(Debug)]
pub struct TransportEnvelope {
    pub src: usize,
    pub class: MsgClass,
    pub frame: Frame,
}

/// Communication failure surfaced to callers of the nonblocking API (and,
/// as a panic with context, inside collectives — a rank cannot meaningfully
/// continue a collective with a dead peer).
#[derive(Clone, Debug)]
pub enum CommError {
    /// The peer's connection closed (process exit, crash, or orderly
    /// shutdown) while traffic from it was still expected.
    PeerDisconnected { peer: usize },
    /// An OS-level transport failure.
    Io(String),
    /// A frame arrived but failed to decode.
    Codec(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerDisconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            CommError::Io(e) => write!(f, "transport I/O error: {e}"),
            CommError::Codec(e) => write!(f, "wire codec error: {e}"),
        }
    }
}

impl std::error::Error for CommError {}

/// The byte-moving half of a communicator. Implementations must preserve
/// per-sender FIFO ordering and be safe to drive from multiple threads
/// (collectives and the telemetry emitter both hold `&Comm`).
pub trait Transport: Send + Sync {
    /// Which backend this is (telemetry segment, diagnostics).
    fn kind(&self) -> TransportKind;
    /// This rank's index.
    fn rank(&self) -> usize;
    /// World size.
    fn size(&self) -> usize;
    /// `true` if payloads should travel as [`Frame::Local`] boxed values;
    /// `false` if they must be encoded to [`Frame::Bytes`].
    fn local_frames(&self) -> bool;
    /// Send one frame to `dest` (self-sends allowed). Must not block on the
    /// receiver making progress — sends are buffered.
    fn send(&self, dest: usize, class: MsgClass, frame: Frame) -> Result<(), CommError>;
    /// Block until the next envelope from any peer arrives.
    fn recv(&self) -> Result<TransportEnvelope, CommError>;
    /// Run a native barrier if the backend has one; return `false` to ask
    /// `Comm` to synthesise the barrier from a gather + broadcast round.
    fn native_barrier(&self) -> bool;
}
