//! Shared-memory transport: the original in-process channel fabric.
//!
//! Every rank holds a sender to every other rank's (single) receive
//! channel plus a shared [`Barrier`]. Payloads travel as boxed `Any`
//! values — no serialisation — which is what keeps the threads-as-ranks
//! test worlds cheap. Channels never close in the vendored shim, so this
//! backend cannot observe peer death; that is a socket-transport feature.

use super::{CommError, Frame, MsgClass, Transport, TransportEnvelope, TransportKind};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

pub struct ShmTransport {
    rank: usize,
    size: usize,
    barrier: Arc<Barrier>,
    senders: Vec<Sender<TransportEnvelope>>,
    receiver: Receiver<TransportEnvelope>,
}

impl ShmTransport {
    /// Build a full world of `n` connected transports, index = rank.
    pub fn world(n: usize) -> Vec<ShmTransport> {
        assert!(n > 0, "a communicator needs at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded()).unzip();
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ShmTransport {
                rank,
                size: n,
                barrier: Arc::clone(&barrier),
                senders: senders.clone(),
                receiver,
            })
            .collect()
    }
}

impl Transport for ShmTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Shm
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn local_frames(&self) -> bool {
        true
    }

    fn send(&self, dest: usize, class: MsgClass, frame: Frame) -> Result<(), CommError> {
        assert!(dest < self.size, "destination rank {dest} out of range");
        self.senders[dest]
            .send(TransportEnvelope {
                src: self.rank,
                class,
                frame,
            })
            .map_err(|_| CommError::Io("shm channel closed".to_string()))
    }

    fn recv(&self) -> Result<TransportEnvelope, CommError> {
        self.receiver
            .recv()
            .map_err(|_| CommError::Io("shm channel closed".to_string()))
    }

    fn native_barrier(&self) -> bool {
        self.barrier.wait();
        true
    }
}
