//! Socket transport: ranks over Unix-domain sockets or TCP.
//!
//! This is the backend that makes ranks *real* — separate OS processes (or
//! threads, for the in-process test worlds) connected by a full mesh of
//! stream sockets. Frames are length-prefixed:
//!
//! ```text
//! [u32 payload_len (LE)] [u8 class tag] [payload bytes]
//! ```
//!
//! with the payload itself produced by the [`super::wire`] codec.
//!
//! ## Rendezvous
//!
//! Peers find each other through a rendezvous spec:
//!
//! * a filesystem directory — rank `r` binds `rank<r>.sock` inside it
//!   (Unix domain sockets);
//! * `tcp:<host>:<base_port>` — rank `r` binds `<host>:<base_port + r>`.
//!
//! Every rank binds its own listener, then dials every lower rank (with
//! retry, since peers bind in any order) and accepts from every higher
//! rank; a `u32` rank handshake identifies each accepted connection.
//!
//! ## Threads
//!
//! Per peer, one writer thread (fed by an unbounded queue, so `send` never
//! blocks on the network — that is what makes `isend` genuinely
//! nonblocking) and one reader thread that decodes frames into a shared
//! incoming queue. A reader observing EOF or an I/O error enqueues a
//! `Down` marker; `Comm` turns that into [`CommError::PeerDisconnected`]
//! for anyone still expecting traffic from that rank — the kill-one-peer
//! path returns an error instead of hanging.

use super::{CommError, Frame, MsgClass, Transport, TransportEnvelope, TransportKind};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on a single frame's payload. Far above anything the pipeline
/// ships (the largest frames are whole-shard migrations), low enough that a
/// corrupt length prefix cannot ask for an absurd allocation.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// How long `connect` keeps retrying a peer that has not bound yet.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);
const CONNECT_RETRY: Duration = Duration::from_millis(10);

/// One peer connection, Unix or TCP.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Parsed rendezvous spec.
enum Rendezvous {
    Unix(PathBuf),
    Tcp { host: String, base_port: u16 },
}

impl Rendezvous {
    fn parse(spec: &str) -> Result<Rendezvous, CommError> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            let (host, port) = rest
                .rsplit_once(':')
                .ok_or_else(|| CommError::Io(format!("tcp rendezvous {spec:?} is not tcp:host:base_port")))?;
            let base_port: u16 = port
                .parse()
                .map_err(|_| CommError::Io(format!("tcp rendezvous port {port:?} is not a u16")))?;
            Ok(Rendezvous::Tcp {
                host: host.to_string(),
                base_port,
            })
        } else {
            Ok(Rendezvous::Unix(PathBuf::from(spec)))
        }
    }

    fn unix_path(dir: &Path, rank: usize) -> PathBuf {
        dir.join(format!("rank{rank}.sock"))
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        })
    }
}

/// What reader threads push into the shared incoming queue.
enum Incoming {
    Env(usize, MsgClass, Vec<u8>),
    /// The peer's connection closed or failed.
    Down(usize),
}

enum WriteCmd {
    Frame(MsgClass, Vec<u8>),
    Shutdown,
}

pub struct SocketTransport {
    rank: usize,
    size: usize,
    /// Per-peer writer queues (`None` at `self.rank`).
    writers: Vec<Option<Sender<WriteCmd>>>,
    /// Loopback for self-sends: feeds the incoming queue directly.
    loopback: Sender<Incoming>,
    incoming: Receiver<Incoming>,
    /// Shutdown handles onto every peer stream (`None` at `self.rank`).
    streams: Vec<Option<Stream>>,
    reader_threads: Vec<JoinHandle<()>>,
    writer_threads: Vec<JoinHandle<()>>,
    /// Our own Unix listener path, removed on drop.
    unix_listener_path: Option<PathBuf>,
}

impl SocketTransport {
    /// Join the world at `spec` as `rank` of `size`. Blocks until the full
    /// peer mesh is connected (every peer must call this within
    /// [`CONNECT_TIMEOUT`]).
    pub fn connect(spec: &str, rank: usize, size: usize) -> Result<SocketTransport, CommError> {
        assert!(size > 0, "a communicator needs at least one rank");
        assert!(rank < size, "rank {rank} out of range for size {size}");
        let rendezvous = Rendezvous::parse(spec)?;
        let io_err = |what: &str, e: std::io::Error| CommError::Io(format!("rank {rank}: {what}: {e}"));

        // Bind our own listener first so peers dialling us can retry-connect
        // against a real backlog.
        let mut unix_listener_path = None;
        let listener = match &rendezvous {
            Rendezvous::Unix(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| io_err("create rendezvous dir", e))?;
                let path = Rendezvous::unix_path(dir, rank);
                // A stale socket file from a crashed run would fail the bind.
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path).map_err(|e| io_err("bind unix listener", e))?;
                unix_listener_path = Some(path);
                Listener::Unix(l)
            }
            Rendezvous::Tcp { host, base_port } => {
                let addr = format!("{host}:{}", base_port + rank as u16);
                Listener::Tcp(TcpListener::bind(&addr).map_err(|e| io_err("bind tcp listener", e))?)
            }
        };

        // Dial every lower rank (retrying until its listener exists), then
        // accept one connection from every higher rank. The u32 handshake
        // tells the acceptor who dialled.
        let mut streams: Vec<Option<Stream>> = (0..size).map(|_| None).collect();
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut stream = Self::dial(&rendezvous, peer, rank)?;
            stream
                .write_all(&(rank as u32).to_le_bytes())
                .map_err(|e| io_err("send handshake", e))?;
            *slot = Some(stream);
        }
        for _ in rank + 1..size {
            let mut stream = listener.accept().map_err(|e| io_err("accept peer", e))?;
            let mut raw = [0u8; 4];
            stream.read_exact(&mut raw).map_err(|e| io_err("read handshake", e))?;
            let peer = u32::from_le_bytes(raw) as usize;
            if peer <= rank || peer >= size {
                return Err(CommError::Io(format!(
                    "rank {rank}: handshake from out-of-range peer {peer}"
                )));
            }
            if streams[peer].is_some() {
                return Err(CommError::Io(format!("rank {rank}: duplicate handshake from {peer}")));
            }
            streams[peer] = Some(stream);
        }

        // Spin up the per-peer reader/writer threads.
        let (loopback, incoming) = unbounded::<Incoming>();
        let mut writers: Vec<Option<Sender<WriteCmd>>> = (0..size).map(|_| None).collect();
        let mut reader_threads = Vec::new();
        let mut writer_threads = Vec::new();
        for (peer, slot) in streams.iter_mut().enumerate() {
            let Some(stream) = slot else { continue };
            let reader = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
            let writer_stream = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
            let to_incoming = loopback.clone();
            reader_threads.push(std::thread::spawn(move || read_loop(reader, peer, &to_incoming)));
            let (tx, rx) = unbounded::<WriteCmd>();
            writer_threads.push(std::thread::spawn(move || write_loop(writer_stream, &rx)));
            writers[peer] = Some(tx);
        }

        Ok(SocketTransport {
            rank,
            size,
            writers,
            loopback,
            incoming,
            streams,
            reader_threads,
            writer_threads,
            unix_listener_path,
        })
    }

    fn dial(rendezvous: &Rendezvous, peer: usize, rank: usize) -> Result<Stream, CommError> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        loop {
            let attempt = match rendezvous {
                Rendezvous::Unix(dir) => UnixStream::connect(Rendezvous::unix_path(dir, peer)).map(Stream::Unix),
                Rendezvous::Tcp { host, base_port } => {
                    TcpStream::connect(format!("{host}:{}", base_port + peer as u16)).map(Stream::Tcp)
                }
            };
            match attempt {
                Ok(stream) => return Ok(stream),
                Err(e) if Instant::now() >= deadline => {
                    return Err(CommError::Io(format!(
                        "rank {rank}: peer {peer} unreachable after {CONNECT_TIMEOUT:?}: {e}"
                    )));
                }
                Err(_) => std::thread::sleep(CONNECT_RETRY),
            }
        }
    }
}

fn read_loop(mut stream: Stream, peer: usize, out: &Sender<Incoming>) {
    loop {
        let mut header = [0u8; 5];
        if stream.read_exact(&mut header).is_err() {
            // EOF or error: the peer is gone (cleanly or not).
            let _ = out.send(Incoming::Down(peer));
            return;
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("sized header"));
        let class = MsgClass::from_wire_tag(header[4]);
        let (Some(class), true) = (class, len <= MAX_FRAME_BYTES) else {
            let _ = out.send(Incoming::Down(peer));
            return;
        };
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            let _ = out.send(Incoming::Down(peer));
            return;
        }
        if out.send(Incoming::Env(peer, class, payload)).is_err() {
            return;
        }
    }
}

fn write_loop(mut stream: Stream, commands: &Receiver<WriteCmd>) {
    while let Ok(cmd) = commands.recv() {
        match cmd {
            WriteCmd::Shutdown => return,
            WriteCmd::Frame(class, payload) => {
                let mut header = [0u8; 5];
                header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
                header[4] = class.wire_tag();
                // A write failure means the peer is gone; its Down marker
                // comes from our reader thread. Drain remaining commands so
                // Drop's Shutdown is still honoured.
                if stream.write_all(&header).is_err() || stream.write_all(&payload).is_err() {
                    continue;
                }
                let _ = stream.flush();
            }
        }
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Socket
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn local_frames(&self) -> bool {
        false
    }

    fn send(&self, dest: usize, class: MsgClass, frame: Frame) -> Result<(), CommError> {
        assert!(dest < self.size, "destination rank {dest} out of range");
        let Frame::Bytes(payload) = frame else {
            panic!("socket transport requires encoded frames");
        };
        assert!(
            payload.len() as u64 <= u64::from(MAX_FRAME_BYTES),
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte transport cap",
            payload.len()
        );
        if dest == self.rank {
            return self
                .loopback
                .send(Incoming::Env(self.rank, class, payload))
                .map_err(|_| CommError::Io("incoming queue closed".to_string()));
        }
        let writer = self.writers[dest].as_ref().expect("peer writer exists");
        // The writer queue is unbounded: enqueueing never blocks, and a dead
        // peer surfaces on the receive side, not here (MPI-like semantics).
        writer
            .send(WriteCmd::Frame(class, payload))
            .map_err(|_| CommError::PeerDisconnected { peer: dest })
    }

    fn recv(&self) -> Result<TransportEnvelope, CommError> {
        match self
            .incoming
            .recv()
            .map_err(|_| CommError::Io("incoming queue closed".to_string()))?
        {
            Incoming::Env(src, class, payload) => Ok(TransportEnvelope {
                src,
                class,
                frame: Frame::Bytes(payload),
            }),
            Incoming::Down(peer) => Err(CommError::PeerDisconnected { peer }),
        }
    }

    fn native_barrier(&self) -> bool {
        false
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Flush-and-stop the writers first: Shutdown is queued behind every
        // already-posted frame, so nothing sent before drop is lost. Joining
        // them cannot deadlock against a live peer — every transport keeps
        // its readers draining until after its own writers have exited.
        for writer in self.writers.iter().flatten() {
            let _ = writer.send(WriteCmd::Shutdown);
        }
        for handle in self.writer_threads.drain(..) {
            let _ = handle.join();
        }
        // Closing the sockets unblocks our reader threads (their blocking
        // read returns) and delivers EOF to every peer still listening —
        // which is how a departed rank turns into `PeerDisconnected` on the
        // other side instead of a hang.
        for stream in self.streams.iter().flatten() {
            stream.shutdown();
        }
        for handle in self.reader_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_listener_path {
            let _ = std::fs::remove_file(path);
            if let Some(dir) = path.parent() {
                // Best-effort: last rank out removes the rendezvous dir.
                let _ = std::fs::remove_dir(dir);
            }
        }
    }
}
