//! Hand-rolled length-prefixed wire codec for the socket transport.
//!
//! The workspace vendors its dependencies, so there is no serde-derived
//! binary format to lean on; instead every message type that crosses a
//! process boundary implements [`Wire`] by hand. The format is deliberately
//! boring — little-endian fixed-width scalars, `u64` length prefixes for
//! sequences, `f64` shipped as raw IEEE-754 bits so a value decodes to the
//! *bit-identical* float that was encoded (the 1e-10 transport-equivalence
//! gate depends on this; in practice round-tripping is exact).
//!
//! Decoding is total: every error path returns a [`WireError`] instead of
//! panicking, and — the property the truncation tests pin down — **every
//! strict prefix of a valid encoding fails to decode**. A length prefix is
//! validated against the bytes actually remaining before any allocation, so
//! a corrupt or truncated frame cannot ask for terabytes.

use std::fmt;

/// Maximum element count a decoded sequence may claim. Anything larger than
/// the remaining byte count is rejected anyway; this is a second, absolute
/// guard so `len * size_hint` arithmetic cannot overflow.
const MAX_SEQ_LEN: u64 = 1 << 40;

/// Decode-side failure: the frame ended early or a field held an
/// unrepresentable value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes mid-field.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A field decoded to a value the type cannot represent
    /// (e.g. a bool byte that is neither 0 nor 1, invalid UTF-8).
    Malformed(&'static str),
    /// Decoding finished with unconsumed bytes left in the frame.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: field needs {needed} bytes, {remaining} remain")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TrailingBytes(n) => write!(f, "frame has {n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a received frame.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes or fail with the exact shortfall.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Validate an element count against the bytes actually remaining:
    /// each element occupies at least `min_elem_bytes` (1 for zero-sized
    /// element encodings would admit absurd counts, so `()` is banned from
    /// sequences instead — see `Wire for ()`).
    fn check_seq(&self, len: u64, min_elem_bytes: usize) -> Result<usize, WireError> {
        if len > MAX_SEQ_LEN {
            return Err(WireError::Malformed("sequence length exceeds absolute cap"));
        }
        let need = (len as usize).saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(WireError::Truncated {
                needed: need,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }
}

/// A type that can cross the socket transport. Implementations must
/// round-trip exactly: `decode(encode(x)) == x` bit for bit.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value, consuming exactly the bytes `encode` produced.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Minimum encoded size in bytes — used to validate sequence length
    /// prefixes before allocating. Must be ≥ 1 and a true lower bound.
    fn min_wire_size() -> usize {
        1
    }

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a complete frame, rejecting trailing bytes.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let value = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(value)
    }
}

macro_rules! wire_scalar {
    ($ty:ty, $bytes:expr) => {
        impl Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let raw = r.take($bytes)?;
                Ok(<$ty>::from_le_bytes(raw.try_into().expect("sized take")))
            }
            fn min_wire_size() -> usize {
                $bytes
            }
        }
    };
}

wire_scalar!(u8, 1);
wire_scalar!(u16, 2);
wire_scalar!(u32, 4);
wire_scalar!(u64, 8);
wire_scalar!(i32, 4);
wire_scalar!(i64, 8);

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Raw bits: NaN payloads, signed zeros and subnormals all survive.
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
    fn min_wire_size() -> usize {
        8
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
    fn min_wire_size() -> usize {
        4
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte is neither 0 nor 1")),
        }
    }
}

/// `usize` travels as `u64` so 32- and 64-bit peers agree on the format.
impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::Malformed("usize does not fit the host"))
    }
    fn min_wire_size() -> usize {
        8
    }
}

/// `()` occupies one byte on the wire. A zero-byte unit would make
/// `Vec<()>`'s length prefix unverifiable against remaining bytes, which is
/// exactly the hole length-guarded decoding is meant to close.
impl Wire for () {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(0);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(()),
            _ => Err(WireError::Malformed("unit byte is not 0")),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        let len = r.check_seq(len, 1)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed("string is not UTF-8"))
    }
    fn min_wire_size() -> usize {
        8
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Malformed("option tag is neither 0 nor 1")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)?;
        let len = r.check_seq(len, T::min_wire_size())?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
    fn min_wire_size() -> usize {
        8
    }
}

impl<T: Wire + Copy + Default, const N: usize> Wire for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
    fn min_wire_size() -> usize {
        N * T::min_wire_size()
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
            fn min_wire_size() -> usize {
                0 $(+ $name::min_wire_size())+
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the vendored-shim stand-in for a property
    /// test generator.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn f64(&mut self) -> f64 {
            // Arbitrary bit patterns, including NaNs/infinities/subnormals.
            f64::from_bits(self.next())
        }
    }

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let buf = value.to_wire();
        let back = T::from_wire(&buf).expect("round trip decodes");
        assert_eq!(back, value);
        assert_truncation_fails::<T>(&buf);
    }

    /// The codec's core safety property: every strict prefix of a valid
    /// encoding must fail to decode (as a complete frame).
    fn assert_truncation_fails<T: Wire + std::fmt::Debug>(buf: &[u8]) {
        for cut in 0..buf.len() {
            assert!(
                T::from_wire(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                buf.len()
            );
        }
    }

    #[test]
    fn scalars_round_trip_and_reject_truncation() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i32);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            let buf = v.to_wire();
            let back = f64::from_wire(&buf).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload survives.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(f64::from_wire(&nan.to_wire()).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn random_f64_bit_patterns_round_trip() {
        let mut rng = Rng(0x1234_5678_9ABC_DEF0);
        for _ in 0..2000 {
            let v = rng.f64();
            let back = f64::from_wire(&v.to_wire()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn compound_types_round_trip() {
        round_trip(Some(17u64));
        round_trip(Option::<u64>::None);
        round_trip(String::from("höchstens ützend"));
        round_trip(String::new());
        round_trip(vec![1.0f64, -2.5, 3.25]);
        round_trip(Vec::<f64>::new());
        round_trip(vec![vec![1u32, 2], vec![], vec![3]]);
        round_trip((3usize, 4usize));
        round_trip((String::from("a"), 1u32, 2.5f64));
        round_trip([1.0f64, 2.0, 3.0]);
        round_trip(vec![(String::from("gpu:0"), 12.5f64)]);
    }

    #[test]
    fn random_compound_values_round_trip_with_truncation_sweep() {
        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
        for _ in 0..200 {
            let len = (rng.next() % 17) as usize;
            let vec: Vec<f64> = (0..len).map(|_| rng.f64()).collect();
            let buf = vec.to_wire();
            let back = Vec::<f64>::from_wire(&buf).unwrap();
            assert_eq!(back.len(), vec.len());
            assert!(back.iter().zip(&vec).all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_truncation_fails::<Vec<f64>>(&buf);
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation() {
        // A frame claiming 2^60 elements but holding none.
        let mut buf = Vec::new();
        (1u64 << 60).encode(&mut buf);
        assert!(matches!(
            Vec::<f64>::from_wire(&buf),
            Err(WireError::Malformed(_)) | Err(WireError::Truncated { .. })
        ));
        // A string claiming more bytes than the frame holds.
        let mut buf = Vec::new();
        (100u64).encode(&mut buf);
        buf.extend_from_slice(b"short");
        assert!(matches!(String::from_wire(&buf), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn malformed_tags_are_rejected() {
        assert_eq!(
            bool::from_wire(&[2]),
            Err(WireError::Malformed("bool byte is neither 0 nor 1"))
        );
        assert!(matches!(Option::<u8>::from_wire(&[7, 0]), Err(WireError::Malformed(_))));
        let mut buf = Vec::new();
        (2u64).encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(String::from_wire(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = 7u32.to_wire();
        buf.push(0);
        assert_eq!(u32::from_wire(&buf), Err(WireError::TrailingBytes(1)));
    }
}
