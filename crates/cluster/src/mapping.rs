//! Rank-to-GPU assignment.
//!
//! The paper follows the GPU-centric rule of thumb: **one MPI rank drives one
//! GPU** (§2). On LUMI-G "one GPU" from the application's point of view is one
//! GCD — half an MI250X card — so two ranks share the physical card whose power
//! `pm_counters` report. On the CSCS A100 system and miniHPC, one rank maps to
//! one single-die card. [`RankMapping`] encodes these rules so the analysis can
//! attribute card-level measurements without double counting.

use crate::topology::Cluster;
use hwmodel::GpuHandle;
use hwmodel::Node;

/// Where one rank runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankPlacement {
    /// Global MPI rank.
    pub rank: u32,
    /// Node index within the cluster.
    pub node_index: usize,
    /// Hostname of that node.
    pub hostname: String,
    /// GPU die index within the node driven by this rank.
    pub gpu_die: usize,
    /// Physical GPU card index within the node that die belongs to.
    pub gpu_card: usize,
    /// Number of ranks sharing that physical card (2 on MI250X, 1 on A100).
    pub ranks_per_card: u32,
    /// Rank-local index on the node (0-based).
    pub local_rank: u32,
}

/// The full rank-to-hardware assignment of a job.
#[derive(Clone, Debug, Default)]
pub struct RankMapping {
    placements: Vec<RankPlacement>,
}

impl RankMapping {
    /// Build the canonical one-rank-per-GPU-die mapping over an entire cluster.
    pub fn one_rank_per_die(cluster: &Cluster) -> Self {
        Self::one_rank_per_die_limited(cluster, cluster.gpu_die_count())
    }

    /// Build the one-rank-per-die mapping limited to the first `n_ranks` dies
    /// (e.g. a job that does not fill its last node).
    pub fn one_rank_per_die_limited(cluster: &Cluster, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "at least one rank required");
        assert!(
            n_ranks <= cluster.gpu_die_count(),
            "cannot place {n_ranks} ranks on {} GPU dies",
            cluster.gpu_die_count()
        );
        let mut placements = Vec::with_capacity(n_ranks);
        let mut rank = 0u32;
        'outer: for (node_index, node) in cluster.nodes().iter().enumerate() {
            let dies_per_card = node.spec().dies_per_card();
            for (die, gpu) in node.gpus().iter().enumerate() {
                if rank as usize >= n_ranks {
                    break 'outer;
                }
                placements.push(RankPlacement {
                    rank,
                    node_index,
                    hostname: node.hostname().to_string(),
                    gpu_die: die,
                    gpu_card: gpu.card_index(),
                    ranks_per_card: dies_per_card as u32,
                    local_rank: die as u32,
                });
                rank += 1;
            }
        }
        Self { placements }
    }

    /// All placements in rank order.
    pub fn placements(&self) -> &[RankPlacement] {
        &self.placements
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.placements.len()
    }

    /// Placement of a specific rank.
    pub fn placement(&self, rank: u32) -> Option<&RankPlacement> {
        self.placements.get(rank as usize)
    }

    /// The node a rank runs on.
    pub fn node<'c>(&self, cluster: &'c Cluster, rank: u32) -> Option<&'c Node> {
        self.placement(rank).map(|p| cluster.node(p.node_index))
    }

    /// The GPU die a rank drives.
    pub fn gpu<'c>(&self, cluster: &'c Cluster, rank: u32) -> Option<&'c GpuHandle> {
        let p = self.placement(rank)?;
        cluster.node(p.node_index).gpu(p.gpu_die)
    }

    /// Ranks that run on a given node.
    pub fn ranks_on_node(&self, node_index: usize) -> Vec<u32> {
        self.placements
            .iter()
            .filter(|p| p.node_index == node_index)
            .map(|p| p.rank)
            .collect()
    }

    /// Ranks that share a given physical GPU card of a given node.
    pub fn ranks_on_card(&self, node_index: usize, card: usize) -> Vec<u32> {
        self.placements
            .iter()
            .filter(|p| p.node_index == node_index && p.gpu_card == card)
            .map(|p| p.rank)
            .collect()
    }

    /// The lowest rank on each node — the paper's rule that per-node
    /// measurements (CPU, memory, node) are identical on every rank of a node
    /// and must be counted only once ("only one measurement needs to be used").
    pub fn node_leader_ranks(&self) -> Vec<u32> {
        let mut leaders = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.placements {
            if seen.insert(p.node_index) {
                leaders.push(p.rank);
            }
        }
        leaders
    }

    /// The lowest rank on each physical GPU card — the rank whose card-level
    /// measurement is counted, to avoid counting MI250X cards twice.
    pub fn card_leader_ranks(&self) -> Vec<u32> {
        let mut leaders = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.placements {
            if seen.insert((p.node_index, p.gpu_card)) {
                leaders.push(p.rank);
            }
        }
        leaders
    }

    /// Number of distinct nodes used by the mapping.
    pub fn node_count(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.node_index)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Number of distinct physical GPU cards used by the mapping.
    pub fn card_count(&self) -> usize {
        self.placements
            .iter()
            .map(|p| (p.node_index, p.gpu_card))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::arch::SystemKind;

    #[test]
    fn lumi_mapping_shares_cards_between_two_ranks() {
        let cluster = Cluster::new(SystemKind::LumiG, 2);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        assert_eq!(mapping.n_ranks(), 16); // 8 GCDs per node
        let p0 = mapping.placement(0).unwrap();
        let p1 = mapping.placement(1).unwrap();
        assert_eq!(p0.gpu_card, p1.gpu_card);
        assert_eq!(p0.ranks_per_card, 2);
        assert_eq!(mapping.ranks_on_card(0, 0), vec![0, 1]);
        // 8 cards total across 2 nodes, one leader each.
        assert_eq!(mapping.card_leader_ranks().len(), 8);
        assert_eq!(mapping.card_count(), 8);
    }

    #[test]
    fn cscs_mapping_is_one_rank_per_card() {
        let cluster = Cluster::new(SystemKind::CscsA100, 2);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        assert_eq!(mapping.n_ranks(), 8);
        assert!(mapping.placements().iter().all(|p| p.ranks_per_card == 1));
        assert_eq!(mapping.card_leader_ranks().len(), 8);
    }

    #[test]
    fn node_leaders_are_first_rank_of_each_node() {
        let cluster = Cluster::new(SystemKind::LumiG, 3);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        assert_eq!(mapping.node_leader_ranks(), vec![0, 8, 16]);
        assert_eq!(mapping.node_count(), 3);
        assert_eq!(mapping.ranks_on_node(1), (8..16).collect::<Vec<u32>>());
    }

    #[test]
    fn limited_mapping_stops_early() {
        let cluster = Cluster::new(SystemKind::CscsA100, 2);
        let mapping = RankMapping::one_rank_per_die_limited(&cluster, 5);
        assert_eq!(mapping.n_ranks(), 5);
        assert_eq!(mapping.node_count(), 2);
        assert_eq!(mapping.placement(4).unwrap().node_index, 1);
    }

    #[test]
    fn accessors_resolve_hardware() {
        let cluster = Cluster::new(SystemKind::MiniHpc, 1);
        let mapping = RankMapping::one_rank_per_die(&cluster);
        assert_eq!(mapping.n_ranks(), 2);
        let node = mapping.node(&cluster, 1).unwrap();
        assert_eq!(node.index(), 0);
        let gpu = mapping.gpu(&cluster, 1).unwrap();
        assert_eq!(gpu.index(), 1);
        assert!(mapping.placement(99).is_none());
    }

    #[test]
    #[should_panic]
    fn too_many_ranks_panics() {
        let cluster = Cluster::new(SystemKind::MiniHpc, 1);
        RankMapping::one_rank_per_die_limited(&cluster, 100);
    }
}
