//! Cluster topology: N nodes of one architecture sharing one simulated clock.

use hwmodel::arch::SystemKind;
use hwmodel::{Node, SimClock};

/// A set of identical simulated nodes driven by a shared simulated clock.
#[derive(Clone)]
pub struct Cluster {
    system: SystemKind,
    nodes: Vec<Node>,
    clock: SimClock,
}

impl Cluster {
    /// Build a cluster of `n_nodes` nodes of the given system architecture.
    pub fn new(system: SystemKind, n_nodes: usize) -> Self {
        assert!(n_nodes >= 1, "a cluster needs at least one node");
        let clock = SimClock::new();
        let nodes = (0..n_nodes)
            .map(|i| system.node_builder().hostname(format!("nid{:06}", i + 1)).index(i).build())
            .collect();
        Self { system, nodes, clock }
    }

    /// Build a cluster sized to hold `gpu_dies` GPU dies (rounded up to whole nodes).
    pub fn with_gpu_dies(system: SystemKind, gpu_dies: usize) -> Self {
        assert!(gpu_dies >= 1);
        let per_node = system.node_builder().spec().gpu_dies();
        let nodes = gpu_dies.div_ceil(per_node);
        Self::new(system, nodes)
    }

    /// Build a cluster sized to hold `gpu_cards` physical GPU cards.
    pub fn with_gpu_cards(system: SystemKind, gpu_cards: usize) -> Self {
        assert!(gpu_cards >= 1);
        let per_node = system.node_builder().spec().gpu_cards();
        let nodes = gpu_cards.div_ceil(per_node);
        Self::new(system, nodes)
    }

    /// The system architecture of every node.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node by index.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of GPU dies in the cluster.
    pub fn gpu_die_count(&self) -> usize {
        self.nodes.iter().map(|n| n.gpus().len()).sum()
    }

    /// Total number of physical GPU cards in the cluster.
    pub fn gpu_card_count(&self) -> usize {
        self.nodes.iter().map(|n| n.spec().gpu_cards()).sum()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advance simulated time by `dt` seconds on the clock and on every node
    /// (energy accumulates at the current device loads).
    pub fn advance(&self, dt: f64) {
        self.clock.advance(dt);
        for node in &self.nodes {
            node.advance(dt);
        }
    }

    /// Set every device on every node to idle.
    pub fn set_idle(&self) {
        for node in &self.nodes {
            node.set_idle();
        }
    }

    /// Set the GPU compute frequency on every die of every node; returns the
    /// applied frequency.
    pub fn set_gpu_frequency(&self, f_hz: f64) -> f64 {
        let mut applied = f_hz;
        for node in &self.nodes {
            applied = node.set_gpu_frequency(f_hz);
        }
        applied
    }

    /// Total energy drawn by the whole cluster so far, in joules
    /// (node-level view, i.e. including PSU losses).
    pub fn total_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.energy_j()).sum()
    }

    /// Total instantaneous power of the cluster in watts.
    pub fn total_power_w(&self) -> f64 {
        self.nodes.iter().map(|n| n.power_w()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_by_cards_and_dies() {
        // 48 MI250X cards -> 12 LUMI-G nodes (4 cards each), 96 GCDs.
        let c = Cluster::with_gpu_cards(SystemKind::LumiG, 48);
        assert_eq!(c.node_count(), 12);
        assert_eq!(c.gpu_card_count(), 48);
        assert_eq!(c.gpu_die_count(), 96);

        // 8 A100 cards -> 2 CSCS nodes.
        let c = Cluster::with_gpu_cards(SystemKind::CscsA100, 8);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.gpu_die_count(), 8);

        let c = Cluster::with_gpu_dies(SystemKind::LumiG, 10);
        assert_eq!(c.node_count(), 2);
    }

    #[test]
    fn hostnames_are_unique() {
        let c = Cluster::new(SystemKind::CscsA100, 3);
        let names: Vec<&str> = c.nodes().iter().map(|n| n.hostname()).collect();
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_eq!(c.node(2).index(), 2);
    }

    #[test]
    fn advance_moves_clock_and_accumulates_energy() {
        let c = Cluster::new(SystemKind::MiniHpc, 2);
        c.advance(10.0);
        assert_eq!(c.clock().now(), 10.0);
        assert!(c.total_energy_j() > 0.0);
        assert!(c.total_power_w() > 0.0);
    }

    #[test]
    fn frequency_applies_cluster_wide() {
        let c = Cluster::new(SystemKind::MiniHpc, 2);
        let applied = c.set_gpu_frequency(1200.0e6);
        for node in c.nodes() {
            for g in node.gpus() {
                assert_eq!(g.compute_frequency(), applied);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_nodes_panics() {
        Cluster::new(SystemKind::LumiG, 0);
    }
}
