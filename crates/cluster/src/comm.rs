//! A miniature MPI-like communicator.
//!
//! SPH-EXA gathers per-rank energy measurements at the end of a run (§2); the
//! experiments here do the same through [`Comm::gather`]. The communicator also
//! provides a barrier and sum/max all-reductions, which the lock-step workload
//! executor uses to agree on per-step durations.
//!
//! Collective calls must be issued in the same order on every rank, exactly as
//! with MPI; there is no tag matching.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::sync::{Arc, Barrier};

type Payload = Box<dyn Any + Send>;
type Envelope = (usize, Payload);

/// Factory producing one [`Comm`] handle per rank.
pub struct CommWorld;

impl CommWorld {
    /// Create communicator handles for `n` ranks.
    pub fn create(n: usize) -> Vec<Comm> {
        assert!(n >= 1, "communicator needs at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        let channels: Vec<(Sender<Envelope>, Receiver<Envelope>)> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Comm {
                rank,
                size: n,
                barrier: Arc::clone(&barrier),
                senders: senders.clone(),
                receiver,
            })
            .collect()
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    barrier: Arc<Barrier>,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` (in
    /// rank order) on the root and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        assert!(root < self.size, "root {root} out of range");
        self.senders[root]
            .send((self.rank, Box::new(value)))
            .expect("gather: send failed");
        if self.rank != root {
            return None;
        }
        let mut slots: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        for _ in 0..self.size {
            let (from, payload) = self.receiver.recv().expect("gather: recv failed");
            let value = payload.downcast::<T>().expect("gather: type mismatch");
            slots[from] = Some(*value);
        }
        Some(slots.into_iter().map(|v| v.expect("gather: missing rank")).collect())
    }

    /// Broadcast a value from `root` to every rank. The root passes
    /// `Some(value)`, the others `None`.
    pub fn broadcast<T: Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        assert!(root < self.size, "root {root} out of range");
        if self.rank == root {
            let value = value.expect("broadcast: root must provide a value");
            for (dest, sender) in self.senders.iter().enumerate() {
                if dest != root {
                    sender.send((root, Box::new(value.clone()))).expect("broadcast: send failed");
                }
            }
            value
        } else {
            let (_, payload) = self.receiver.recv().expect("broadcast: recv failed");
            *payload.downcast::<T>().expect("broadcast: type mismatch")
        }
    }

    /// Sum an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let gathered = self.gather(value, 0);
        let total = gathered.map(|v| v.iter().sum::<f64>());
        self.broadcast(total, 0)
    }

    /// Maximum of an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let gathered = self.gather(value, 0);
        let max = gathered.map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
        self.broadcast(max, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<F>(n: usize, f: F) -> Vec<f64>
    where
        F: Fn(&Comm) -> f64 + Sync,
    {
        let comms = CommWorld::create(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn single_rank_world_works() {
        let comms = CommWorld::create(1);
        assert_eq!(comms[0].size(), 1);
        assert_eq!(comms[0].gather(5u32, 0), Some(vec![5]));
        assert_eq!(comms[0].allreduce_sum(2.0), 2.0);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let comms = CommWorld::create(4);
        let results: Vec<Option<Vec<usize>>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.gather(c.rank() * 10, 0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_world(4, |c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12));
        let maxes = run_world(3, |c| c.allreduce_max(c.rank() as f64));
        assert!(maxes.iter().all(|&m| (m - 2.0).abs() < 1e-12));
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let comms = CommWorld::create(3);
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let value = (c.rank() == 1).then(|| "hello".to_string());
                        c.broadcast(value, 1)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == "hello"));
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    #[should_panic]
    fn invalid_root_panics() {
        let comms = CommWorld::create(2);
        comms[0].gather(1u8, 5);
    }
}
