//! A miniature MPI-like communicator.
//!
//! SPH-EXA gathers per-rank energy measurements at the end of a run (§2); the
//! experiments here do the same through [`Comm::gather`]. The communicator also
//! provides a barrier and sum/max all-reductions, which the lock-step workload
//! executor uses to agree on per-step durations.
//!
//! Collective calls must be issued in the same order on every rank, exactly as
//! with MPI; there is no tag matching. Envelopes *are* matched by sender,
//! though: a receiver drains exactly one message per expected peer and stashes
//! out-of-order arrivals, so a fast rank racing ahead into the next collective
//! cannot corrupt a slower rank still draining the current one.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier, Mutex};

type Payload = Box<dyn Any + Send>;
type Envelope = (usize, Payload);

/// Factory producing one [`Comm`] handle per rank.
pub struct CommWorld;

impl CommWorld {
    /// Create communicator handles for `n` ranks.
    pub fn create(n: usize) -> Vec<Comm> {
        assert!(n >= 1, "communicator needs at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        let channels: Vec<(Sender<Envelope>, Receiver<Envelope>)> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Comm {
                rank,
                size: n,
                barrier: Arc::clone(&barrier),
                senders: senders.clone(),
                receiver,
                pending: Mutex::new(VecDeque::new()),
            })
            .collect()
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    barrier: Arc<Barrier>,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Envelopes received while waiting for a specific sender. A rank that
    /// finished collective `k` may already be sending for collective `k + 1`
    /// while we still drain `k`; its early envelope is parked here until the
    /// matching receive comes around.
    pending: Mutex<VecDeque<Envelope>>,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Receive the next envelope from a specific sender, parking any envelopes
    /// other ranks delivered in the meantime. Per-sender channel FIFO plus
    /// per-sender matching is what keeps back-to-back collectives from
    /// cross-talking when ranks run at different speeds.
    fn recv_from(&self, src: usize) -> Payload {
        {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            if let Some(pos) = pending.iter().position(|(from, _)| *from == src) {
                return pending.remove(pos).expect("position just found").1;
            }
        }
        loop {
            let (from, payload) = self.receiver.recv().expect("recv failed");
            if from == src {
                return payload;
            }
            self.pending.lock().expect("pending queue poisoned").push_back((from, payload));
        }
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` (in
    /// rank order) on the root and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        assert!(root < self.size, "root {root} out of range");
        self.senders[root]
            .send((self.rank, Box::new(value)))
            .expect("gather: send failed");
        if self.rank != root {
            return None;
        }
        Some(
            (0..self.size)
                .map(|src| *self.recv_from(src).downcast::<T>().expect("gather: type mismatch"))
                .collect(),
        )
    }

    /// Broadcast a value from `root` to every rank. The root passes
    /// `Some(value)`, the others `None`.
    pub fn broadcast<T: Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        assert!(root < self.size, "root {root} out of range");
        if self.rank == root {
            let value = value.expect("broadcast: root must provide a value");
            for (dest, sender) in self.senders.iter().enumerate() {
                if dest != root {
                    sender.send((root, Box::new(value.clone()))).expect("broadcast: send failed");
                }
            }
            value
        } else {
            *self.recv_from(root).downcast::<T>().expect("broadcast: type mismatch")
        }
    }

    /// Sum an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let gathered = self.gather(value, 0);
        let total = gathered.map(|v| v.iter().sum::<f64>());
        self.broadcast(total, 0)
    }

    /// Maximum of an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let gathered = self.gather(value, 0);
        let max = gathered.map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
        self.broadcast(max, 0)
    }

    /// Minimum of an `f64` across all ranks; every rank receives the result.
    /// This is how the distributed propagator agrees on a global Courant
    /// timestep: each rank reduces over its owned particles, then the world
    /// takes the minimum.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        let gathered = self.gather(value, 0);
        let min = gathered.map(|v| v.into_iter().fold(f64::INFINITY, f64::min));
        self.broadcast(min, 0)
    }

    /// Gather one value from every rank onto *every* rank, in rank order.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(value, 0);
        self.broadcast(gathered, 0)
    }

    /// Personalised all-to-all: `outgoing[d]` is delivered to rank `d`, and the
    /// returned vector holds one value per source rank (`result[s]` came from
    /// rank `s`). This is the halo-exchange / particle-migration primitive.
    pub fn alltoall<T: Send + 'static>(&self, outgoing: Vec<T>) -> Vec<T> {
        assert_eq!(
            outgoing.len(),
            self.size,
            "alltoall: need one payload per destination rank"
        );
        for (dest, value) in outgoing.into_iter().enumerate() {
            self.senders[dest]
                .send((self.rank, Box::new(value)))
                .expect("alltoall: send failed");
        }
        (0..self.size)
            .map(|src| *self.recv_from(src).downcast::<T>().expect("alltoall: type mismatch"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<F>(n: usize, f: F) -> Vec<f64>
    where
        F: Fn(&Comm) -> f64 + Sync,
    {
        let comms = CommWorld::create(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn single_rank_world_works() {
        let comms = CommWorld::create(1);
        assert_eq!(comms[0].size(), 1);
        assert_eq!(comms[0].gather(5u32, 0), Some(vec![5]));
        assert_eq!(comms[0].allreduce_sum(2.0), 2.0);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let comms = CommWorld::create(4);
        let results: Vec<Option<Vec<usize>>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.gather(c.rank() * 10, 0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_world(4, |c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12));
        let maxes = run_world(3, |c| c.allreduce_max(c.rank() as f64));
        assert!(maxes.iter().all(|&m| (m - 2.0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_min_delivers_global_minimum_to_every_rank() {
        // Courant-style reduction: every rank proposes a local dt, all agree
        // on the smallest one. The min is exact in floating point — no
        // associativity slack.
        let mins = run_world(4, |c| c.allreduce_min(0.1 * (c.rank() as f64 + 1.0)));
        assert!(mins.iter().all(|&m| m == 0.1));
        let single = run_world(1, |c| c.allreduce_min(0.7));
        assert_eq!(single, vec![0.7]);
        // Negative values reduce just as well.
        let neg = run_world(3, |c| c.allreduce_min(-(c.rank() as f64)));
        assert!(neg.iter().all(|&m| m == -2.0));
    }

    #[test]
    fn allreduce_min_is_consistent_with_max() {
        let comms = CommWorld::create(3);
        let results: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| s.spawn(|| (c.allreduce_min(c.rank() as f64), c.allreduce_max(c.rank() as f64))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&(lo, hi)| lo == 0.0 && hi == 2.0));
    }

    #[test]
    fn allgather_collects_on_every_rank() {
        let comms = CommWorld::create(3);
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.allgather(c.rank() * 2))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == &vec![0, 2, 4]));
    }

    #[test]
    fn alltoall_routes_personalised_payloads() {
        let comms = CommWorld::create(4);
        let results: Vec<Vec<(usize, usize)>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        // Rank r sends (r, d) to destination d.
                        let outgoing: Vec<(usize, usize)> = (0..c.size()).map(|d| (c.rank(), d)).collect();
                        c.alltoall(outgoing)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, incoming) in results.iter().enumerate() {
            for (src, &(from, to)) in incoming.iter().enumerate() {
                assert_eq!((from, to), (src, dest));
            }
        }
    }

    #[test]
    fn repeated_alltoalls_do_not_cross_talk() {
        // Two back-to-back exchanges with different payload shapes: the
        // per-sender matching must keep each exchange's envelopes separate.
        type Exchange = Vec<Vec<u32>>;
        let comms = CommWorld::create(3);
        let results: Vec<(Exchange, Exchange)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let first: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![c.rank() as u32; d + 1]).collect();
                        let a = c.alltoall(first);
                        let second: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![100 + c.rank() as u32; d]).collect();
                        let b = c.alltoall(second);
                        (a, b)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, (a, b)) in results.iter().enumerate() {
            for (src, row) in a.iter().enumerate() {
                assert_eq!(row, &vec![src as u32; dest + 1]);
            }
            for (src, row) in b.iter().enumerate() {
                assert_eq!(row, &vec![100 + src as u32; dest]);
            }
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let comms = CommWorld::create(3);
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let value = (c.rank() == 1).then(|| "hello".to_string());
                        c.broadcast(value, 1)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == "hello"));
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    #[should_panic]
    fn invalid_root_panics() {
        let comms = CommWorld::create(2);
        comms[0].gather(1u8, 5);
    }
}
