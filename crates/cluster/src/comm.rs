//! A miniature MPI-like communicator over pluggable transports.
//!
//! SPH-EXA gathers per-rank energy measurements at the end of a run (§2); the
//! experiments here do the same through [`Comm::gather`]. The communicator also
//! provides a barrier, sum/max/min all-reductions, and — new with the real
//! transports — nonblocking point-to-point transfers ([`Comm::isend`] /
//! [`Comm::irecv`]) that the distributed propagator overlaps with compute.
//!
//! `Comm` owns the MPI semantics; the bytes move through a
//! [`Transport`](crate::transport::Transport) chosen by [`TransportKind`]:
//! in-process shared-memory channels (ranks are threads, payloads are boxed
//! values) or Unix-socket/TCP streams (ranks may be separate OS processes,
//! payloads go through the hand-rolled wire codec).
//!
//! Collective calls must be issued in the same order on every rank, exactly as
//! with MPI; there is no tag matching. Envelopes *are* matched by sender and
//! traffic class, though: a receiver drains exactly one message per expected
//! peer and stashes out-of-order arrivals, so a fast rank racing ahead into
//! the next collective cannot corrupt a slower rank still draining the
//! current one — and an in-flight `isend` can never be mistaken for a
//! collective contribution. Each rank's `Comm` is driven from one thread at a
//! time (stats snapshots are safe from anywhere).

use crate::transport::shm::ShmTransport;
use crate::transport::socket::SocketTransport;
use crate::transport::wire::Wire;
use crate::transport::{Frame, MsgClass, Transport, TransportEnvelope, TransportKind};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use crate::transport::CommError;

/// The traffic kinds a [`Comm`] counts, one row per collective plus one for
/// the nonblocking point-to-point API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// [`Comm::barrier`].
    Barrier,
    /// [`Comm::gather`].
    Gather,
    /// [`Comm::broadcast`].
    Broadcast,
    /// [`Comm::allreduce_sum`] / [`Comm::allreduce_max`] / [`Comm::allreduce_min`].
    Allreduce,
    /// [`Comm::allgather`].
    Allgather,
    /// [`Comm::alltoall`].
    Alltoall,
    /// [`Comm::isend`] / [`Comm::irecv`].
    P2p,
}

impl CollectiveKind {
    /// Stable lowercase label, used in metric names (`comm.<label>.messages`).
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::P2p => "p2p",
        }
    }

    /// Every kind, in declaration order.
    pub fn all() -> [CollectiveKind; 7] {
        [
            CollectiveKind::Barrier,
            CollectiveKind::Gather,
            CollectiveKind::Broadcast,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
            CollectiveKind::Alltoall,
            CollectiveKind::P2p,
        ]
    }
}

/// Per-rank traffic accounting, one row per [`CollectiveKind`].
///
/// Counts are attributed to the collective the *application* called: the
/// all-reductions and `allgather` are internally composed from gather +
/// broadcast, but their envelopes count under `Allreduce`/`Allgather`, not
/// under the primitives — the per-kind baseline the transport backends are
/// judged against.
///
/// `calls` counts invocations on this rank, `messages` counts envelopes this
/// rank *sent*, and `bytes` approximates their payload as the inline size of
/// the sent value (`size_of::<T>()`); heap contents behind pointers (e.g. the
/// elements of a `Vec` payload) are not chased, so both backends report the
/// same numbers for the same traffic.
#[derive(Default)]
pub struct CommStats {
    rows: [(AtomicU64, AtomicU64, AtomicU64); 7],
}

impl CommStats {
    fn record(&self, kind: CollectiveKind, messages: u64, bytes: u64) {
        let (calls, msgs, byts) = &self.rows[kind as usize];
        calls.fetch_add(1, Ordering::Relaxed);
        msgs.fetch_add(messages, Ordering::Relaxed);
        byts.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Point-in-time copy of every row.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            rows: CollectiveKind::all()
                .into_iter()
                .map(|kind| {
                    let (calls, msgs, bytes) = &self.rows[kind as usize];
                    CommStatsRow {
                        kind,
                        calls: calls.load(Ordering::Relaxed),
                        messages: msgs.load(Ordering::Relaxed),
                        bytes: bytes.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }
}

/// One row of a [`CommStatsSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommStatsRow {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Invocations on this rank.
    pub calls: u64,
    /// Envelopes sent by this rank.
    pub messages: u64,
    /// Approximate payload bytes sent by this rank (inline sizes).
    pub bytes: u64,
}

/// Point-in-time copy of a communicator's [`CommStats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// One row per collective kind, in [`CollectiveKind::all`] order.
    pub rows: Vec<CommStatsRow>,
}

impl CommStatsSnapshot {
    /// The row for `kind`.
    pub fn row(&self, kind: CollectiveKind) -> CommStatsRow {
        self.rows[kind as usize]
    }

    /// Total envelopes sent across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.rows.iter().map(|r| r.messages).sum()
    }
}

/// Factory producing one [`Comm`] handle per rank.
pub struct CommWorld;

static SOCKET_WORLD_COUNTER: AtomicU64 = AtomicU64::new(0);

impl CommWorld {
    /// Create communicator handles for `n` ranks over the default
    /// shared-memory transport (ranks are threads of this process).
    pub fn create(n: usize) -> Vec<Comm> {
        Self::create_with(n, TransportKind::Shm)
    }

    /// Create communicator handles for `n` ranks over `kind`. The socket
    /// backend builds a real Unix-domain-socket mesh under a fresh
    /// rendezvous directory in the system temp dir — every byte crosses the
    /// OS, even when the ranks are threads of one process.
    pub fn create_with(n: usize, kind: TransportKind) -> Vec<Comm> {
        assert!(n >= 1, "communicator needs at least one rank");
        match kind {
            TransportKind::Shm => ShmTransport::world(n)
                .into_iter()
                .map(|t| Comm::from_transport(Box::new(t)))
                .collect(),
            TransportKind::Socket => {
                let dir = std::env::temp_dir().join(format!(
                    "sph-comm-{}-{}",
                    std::process::id(),
                    SOCKET_WORLD_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let spec = dir.to_string_lossy().into_owned();
                // Connect concurrently: the mesh handshake needs every rank
                // dialling at once.
                let handles: Vec<_> = (0..n)
                    .map(|rank| {
                        let spec = spec.clone();
                        std::thread::spawn(move || SocketTransport::connect(&spec, rank, n))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let transport = h
                            .join()
                            .expect("socket connect thread panicked")
                            .unwrap_or_else(|e| panic!("socket world setup failed: {e}"));
                        Comm::from_transport(Box::new(transport))
                    })
                    .collect()
            }
        }
    }

    /// Join a multi-process socket world as one rank. `spec` is either a
    /// rendezvous directory (Unix domain sockets) or `tcp:<host>:<base_port>`;
    /// every participating process must call this with the same spec.
    pub fn connect_socket(spec: &str, rank: usize, size: usize) -> Result<Comm, CommError> {
        Ok(Comm::from_transport(Box::new(SocketTransport::connect(
            spec, rank, size,
        )?)))
    }
}

/// Completion handle of a nonblocking send. The send itself is buffered by
/// the transport — `wait` only reports whether posting succeeded — but the
/// handle must still be waited before the next collective so the
/// communication schedule stays well-ordered (`sphlint` enforces this).
#[must_use = "complete the transfer with wait() before the next collective"]
pub struct SendHandle {
    result: Result<(), CommError>,
}

impl SendHandle {
    /// Complete the send.
    pub fn wait(self) -> Result<(), CommError> {
        self.result
    }
}

/// Completion handle of a nonblocking receive posted by [`Comm::irecv`].
#[must_use = "complete the transfer with wait() before the next collective"]
pub struct RecvHandle<T: Wire + Send + 'static> {
    src: usize,
    _payload: PhantomData<fn() -> T>,
}

impl<T: Wire + Send + 'static> RecvHandle<T> {
    /// The rank this handle is receiving from.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Block until the matching message arrives and decode it. Returns
    /// [`CommError::PeerDisconnected`] — instead of hanging — if the peer's
    /// connection closed before its message arrived.
    pub fn wait(self, comm: &Comm) -> Result<T, CommError> {
        comm.try_recv_value(self.src, MsgClass::P2p)
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    transport: Box<dyn Transport>,
    /// Envelopes received while waiting for a specific sender. A rank that
    /// finished collective `k` may already be sending for collective `k + 1`
    /// (or have in-flight `isend` traffic) while we still drain `k`; early
    /// envelopes are parked here until the matching receive comes around.
    pending: Mutex<VecDeque<TransportEnvelope>>,
    /// Peers whose connection the transport reported closed.
    down: Mutex<Vec<bool>>,
    /// Per-collective traffic accounting for this rank.
    stats: CommStats,
}

impl Comm {
    fn from_transport(transport: Box<dyn Transport>) -> Self {
        let size = transport.size();
        Comm {
            transport,
            pending: Mutex::new(VecDeque::new()),
            down: Mutex::new(vec![false; size]),
            stats: CommStats::default(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Which transport backend this communicator runs on.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        if self.transport.native_barrier() {
            self.stats.record(CollectiveKind::Barrier, 0, 0);
            return;
        }
        // No native barrier (socket backend): synthesise one from a gather +
        // broadcast round, attributed to Barrier.
        let broadcast_sends = if self.rank() == 0 { self.size() as u64 - 1 } else { 0 };
        self.stats
            .record(CollectiveKind::Barrier, 1 + broadcast_sends, 1 + broadcast_sends);
        let gathered = self.gather_inner(1u8, 0);
        let _ = self.broadcast_inner(gathered.map(|_| 1u8), 0);
    }

    /// Snapshot of this rank's per-collective traffic counters.
    pub fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }

    /// Encode `value` the way the active transport wants it.
    fn encode_frame<T: Wire + Send + 'static>(&self, value: T) -> Frame {
        if self.transport.local_frames() {
            Frame::Local(Box::new(value))
        } else {
            Frame::Bytes(value.to_wire())
        }
    }

    fn decode_frame<T: Wire + Send + 'static>(frame: Frame) -> Result<T, CommError> {
        match frame {
            Frame::Local(boxed) => Ok(*boxed
                .downcast::<T>()
                .expect("payload type mismatch: collective order must agree across ranks")),
            Frame::Bytes(buf) => T::from_wire(&buf).map_err(|e| CommError::Codec(e.to_string())),
        }
    }

    fn send_value<T: Wire + Send + 'static>(&self, dest: usize, class: MsgClass, value: T, ctx: &str) {
        let frame = self.encode_frame(value);
        if let Err(e) = self.transport.send(dest, class, frame) {
            panic!("{ctx}: send to rank {dest} failed: {e}");
        }
    }

    /// Receive the next envelope from a specific `(sender, class)`, parking
    /// any envelopes other traffic delivered in the meantime. Per-sender
    /// transport FIFO plus `(sender, class)` matching is what keeps
    /// back-to-back collectives — and collectives racing in-flight `isend`
    /// traffic — from cross-talking when ranks run at different speeds.
    fn recv_from(&self, src: usize, class: MsgClass) -> Result<Frame, CommError> {
        {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            if let Some(pos) = pending.iter().position(|e| e.src == src && e.class == class) {
                return Ok(pending.remove(pos).expect("position just found").frame);
            }
        }
        if self.down.lock().expect("down set poisoned")[src] {
            return Err(CommError::PeerDisconnected { peer: src });
        }
        loop {
            match self.transport.recv() {
                Ok(env) => {
                    if env.src == src && env.class == class {
                        return Ok(env.frame);
                    }
                    self.pending.lock().expect("pending queue poisoned").push_back(env);
                }
                Err(CommError::PeerDisconnected { peer }) => {
                    self.down.lock().expect("down set poisoned")[peer] = true;
                    if peer == src {
                        return Err(CommError::PeerDisconnected { peer });
                    }
                    // Another peer died; the traffic we are waiting for may
                    // still arrive.
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv_value<T: Wire + Send + 'static>(&self, src: usize, class: MsgClass) -> Result<T, CommError> {
        Self::decode_frame(self.recv_from(src, class)?)
    }

    fn recv_value<T: Wire + Send + 'static>(&self, src: usize, class: MsgClass, ctx: &str) -> T {
        self.try_recv_value(src, class)
            .unwrap_or_else(|e| panic!("{ctx}: receive from rank {src} failed: {e}"))
    }

    /// Post a nonblocking send of `value` to `dest`. The transfer is
    /// buffered by the transport; the returned handle's
    /// [`SendHandle::wait`] completes it. Ghost exchange posts these, runs
    /// the interior-row kernels, then waits.
    pub fn isend<T: Wire + Send + 'static>(&self, dest: usize, value: T) -> SendHandle {
        self.stats.record(CollectiveKind::P2p, 1, std::mem::size_of::<T>() as u64);
        let frame = self.encode_frame(value);
        SendHandle {
            result: self.transport.send(dest, MsgClass::P2p, frame),
        }
    }

    /// Post a nonblocking receive from `src`. Matching is by sender and
    /// traffic class, so in-flight point-to-point transfers never collide
    /// with collective envelopes from the same rank.
    pub fn irecv<T: Wire + Send + 'static>(&self, src: usize) -> RecvHandle<T> {
        assert!(src < self.size(), "source rank {src} out of range");
        self.stats.record(CollectiveKind::P2p, 0, 0);
        RecvHandle {
            src,
            _payload: PhantomData,
        }
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` (in
    /// rank order) on the root and `None` elsewhere.
    pub fn gather<T: Wire + Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        self.stats.record(CollectiveKind::Gather, 1, std::mem::size_of::<T>() as u64);
        self.gather_inner(value, root)
    }

    fn gather_inner<T: Wire + Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        assert!(root < self.size(), "root {root} out of range");
        self.send_value(root, MsgClass::Collective, value, "gather");
        if self.rank() != root {
            return None;
        }
        Some(
            (0..self.size())
                .map(|src| self.recv_value::<T>(src, MsgClass::Collective, "gather"))
                .collect(),
        )
    }

    /// Broadcast a value from `root` to every rank. Only the root's closure
    /// is invoked — non-root ranks never produce (or pretend to produce) a
    /// value, which is what makes call sites like
    /// `comm.broadcast(0, || expensive_root_only_computation())` safe by
    /// construction.
    pub fn broadcast<T: Wire + Clone + Send + 'static>(&self, root: usize, value: impl FnOnce() -> T) -> T {
        let sends = if self.rank() == root { self.size() as u64 - 1 } else { 0 };
        self.stats.record(
            CollectiveKind::Broadcast,
            sends,
            sends * std::mem::size_of::<T>() as u64,
        );
        let value = (self.rank() == root).then(value);
        self.broadcast_inner(value, root)
    }

    fn broadcast_inner<T: Wire + Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        assert!(root < self.size(), "root {root} out of range");
        if self.rank() == root {
            let value = value.expect("broadcast: root must provide a value");
            for dest in 0..self.size() {
                if dest != root {
                    self.send_value(dest, MsgClass::Collective, value.clone(), "broadcast");
                }
            }
            value
        } else {
            self.recv_value::<T>(root, MsgClass::Collective, "broadcast")
        }
    }

    /// Count one reduction composed of a gather send plus the root's
    /// broadcast fan-out, attributed to `kind`.
    fn record_composed(&self, kind: CollectiveKind, payload_bytes: u64, broadcast_bytes: u64) {
        let broadcast_sends = if self.rank() == 0 { self.size() as u64 - 1 } else { 0 };
        self.stats.record(
            kind,
            1 + broadcast_sends,
            payload_bytes + broadcast_sends * broadcast_bytes,
        );
    }

    /// Sum an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let total = gathered.map(|v| v.iter().sum::<f64>());
        self.broadcast_inner(total, 0)
    }

    /// Maximum of an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let max = gathered.map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
        self.broadcast_inner(max, 0)
    }

    /// Minimum of an `f64` across all ranks; every rank receives the result.
    /// This is how the distributed propagator agrees on a global Courant
    /// timestep: each rank reduces over its owned particles, then the world
    /// takes the minimum.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let min = gathered.map(|v| v.into_iter().fold(f64::INFINITY, f64::min));
        self.broadcast_inner(min, 0)
    }

    /// Gather one value from every rank onto *every* rank, in rank order.
    pub fn allgather<T: Wire + Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let inline = std::mem::size_of::<T>() as u64;
        self.record_composed(CollectiveKind::Allgather, inline, inline * self.size() as u64);
        let gathered = self.gather_inner(value, 0);
        self.broadcast_inner(gathered, 0)
    }

    /// Personalised all-to-all: `outgoing[d]` is delivered to rank `d`, and the
    /// returned vector holds one value per source rank (`result[s]` came from
    /// rank `s`). This is the halo-exchange primitive.
    pub fn alltoall<T: Wire + Send + 'static>(&self, outgoing: Vec<T>) -> Vec<T> {
        self.stats.record(
            CollectiveKind::Alltoall,
            self.size() as u64,
            (self.size() * std::mem::size_of::<T>()) as u64,
        );
        assert_eq!(
            outgoing.len(),
            self.size(),
            "alltoall: need one payload per destination rank"
        );
        for (dest, value) in outgoing.into_iter().enumerate() {
            self.send_value(dest, MsgClass::Collective, value, "alltoall");
        }
        (0..self.size())
            .map(|src| self.recv_value::<T>(src, MsgClass::Collective, "alltoall"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<F>(n: usize, f: F) -> Vec<f64>
    where
        F: Fn(&Comm) -> f64 + Sync,
    {
        let comms = CommWorld::create(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn single_rank_world_works() {
        let comms = CommWorld::create(1);
        assert_eq!(comms[0].size(), 1);
        assert_eq!(comms[0].transport_kind(), TransportKind::Shm);
        assert_eq!(comms[0].gather(5u32, 0), Some(vec![5]));
        assert_eq!(comms[0].allreduce_sum(2.0), 2.0);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let comms = CommWorld::create(4);
        let results: Vec<Option<Vec<usize>>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.gather(c.rank() * 10, 0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_world(4, |c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12));
        let maxes = run_world(3, |c| c.allreduce_max(c.rank() as f64));
        assert!(maxes.iter().all(|&m| (m - 2.0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_min_delivers_global_minimum_to_every_rank() {
        // Courant-style reduction: every rank proposes a local dt, all agree
        // on the smallest one. The min is exact in floating point — no
        // associativity slack.
        let mins = run_world(4, |c| c.allreduce_min(0.1 * (c.rank() as f64 + 1.0)));
        assert!(mins.iter().all(|&m| m == 0.1));
        let single = run_world(1, |c| c.allreduce_min(0.7));
        assert_eq!(single, vec![0.7]);
        // Negative values reduce just as well.
        let neg = run_world(3, |c| c.allreduce_min(-(c.rank() as f64)));
        assert!(neg.iter().all(|&m| m == -2.0));
    }

    #[test]
    fn allreduce_min_is_consistent_with_max() {
        let comms = CommWorld::create(3);
        let results: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| s.spawn(|| (c.allreduce_min(c.rank() as f64), c.allreduce_max(c.rank() as f64))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&(lo, hi)| lo == 0.0 && hi == 2.0));
    }

    #[test]
    fn allgather_collects_on_every_rank() {
        let comms = CommWorld::create(3);
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.allgather(c.rank() * 2))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == &vec![0, 2, 4]));
    }

    #[test]
    fn alltoall_routes_personalised_payloads() {
        let comms = CommWorld::create(4);
        let results: Vec<Vec<(usize, usize)>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        // Rank r sends (r, d) to destination d.
                        let outgoing: Vec<(usize, usize)> = (0..c.size()).map(|d| (c.rank(), d)).collect();
                        c.alltoall(outgoing)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, incoming) in results.iter().enumerate() {
            for (src, &(from, to)) in incoming.iter().enumerate() {
                assert_eq!((from, to), (src, dest));
            }
        }
    }

    #[test]
    fn repeated_alltoalls_do_not_cross_talk() {
        // Two back-to-back exchanges with different payload shapes: the
        // per-sender matching must keep each exchange's envelopes separate.
        type Exchange = Vec<Vec<u32>>;
        let comms = CommWorld::create(3);
        let results: Vec<(Exchange, Exchange)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let first: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![c.rank() as u32; d + 1]).collect();
                        let a = c.alltoall(first);
                        let second: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![100 + c.rank() as u32; d]).collect();
                        let b = c.alltoall(second);
                        (a, b)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, (a, b)) in results.iter().enumerate() {
            for (src, row) in a.iter().enumerate() {
                assert_eq!(row, &vec![src as u32; dest + 1]);
            }
            for (src, row) in b.iter().enumerate() {
                assert_eq!(row, &vec![100 + src as u32; dest]);
            }
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let comms = CommWorld::create(3);
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| s.spawn(|| c.broadcast(1, || "hello".to_string())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == "hello"));
    }

    #[test]
    fn broadcast_invokes_the_producer_only_on_the_root() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let produced = AtomicUsize::new(0);
        let comms = CommWorld::create(3);
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        c.broadcast(2, || {
                            produced.fetch_add(1, Ordering::SeqCst);
                            42u64
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == 42));
        assert_eq!(produced.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    fn isend_irecv_delivers_point_to_point() {
        let comms = CommWorld::create(3);
        let results: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        // Ring: send to the next rank, receive from the previous.
                        let next = (c.rank() + 1) % c.size();
                        let prev = (c.rank() + c.size() - 1) % c.size();
                        let send = c.isend(next, vec![c.rank() as f64; 4]);
                        let recv = c.irecv::<Vec<f64>>(prev);
                        let got = recv.wait(c).expect("ring receive");
                        send.wait().expect("ring send");
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, got) in results.iter().enumerate() {
            let prev = (rank + 2) % 3;
            assert_eq!(got, &vec![prev as f64; 4]);
        }
    }

    #[test]
    fn in_flight_p2p_does_not_corrupt_collectives() {
        // An isend posted *before* a collective must not be drained as the
        // collective's contribution: envelope matching is (sender, class).
        let comms = CommWorld::create(2);
        let results: Vec<(f64, Option<u64>)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let send = (c.rank() == 0).then(|| c.isend(1, 99u64));
                        let sum = c.allreduce_sum(1.0);
                        let got = (c.rank() == 1).then(|| c.irecv::<u64>(0).wait(c).expect("p2p receive"));
                        if let Some(send) = send {
                            send.wait().expect("p2p send");
                        }
                        (sum, got)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0], (2.0, None));
        assert_eq!(results[1], (2.0, Some(99)));
    }

    #[test]
    fn stats_attribute_traffic_to_the_called_collective() {
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    c.barrier();
                    let _ = c.gather(c.rank() as u64, 0);
                    let _ = c.broadcast(0, || 1.0f64);
                    let _ = c.allreduce_sum(1.0);
                    let _ = c.allreduce_min(1.0);
                    let _ = c.allgather(c.rank() as u32);
                    let _ = c.alltoall(vec![0u8; c.size()]);
                });
            }
        });
        let root = comms[0].stats();
        let leaf = comms[3].stats();
        // Composed collectives count under their own kind, not the
        // primitives they are built from.
        assert_eq!(root.row(CollectiveKind::Gather).calls, 1);
        assert_eq!(root.row(CollectiveKind::Gather).messages, 1);
        assert_eq!(root.row(CollectiveKind::Gather).bytes, 8);
        assert_eq!(root.row(CollectiveKind::Broadcast).messages, 3);
        assert_eq!(leaf.row(CollectiveKind::Broadcast).messages, 0);
        assert_eq!(root.row(CollectiveKind::Allreduce).calls, 2);
        // Root: gather send + 3 broadcast sends, per reduction.
        assert_eq!(root.row(CollectiveKind::Allreduce).messages, 8);
        assert_eq!(leaf.row(CollectiveKind::Allreduce).messages, 2);
        assert_eq!(leaf.row(CollectiveKind::Allreduce).bytes, 16);
        assert_eq!(root.row(CollectiveKind::Allgather).calls, 1);
        assert_eq!(leaf.row(CollectiveKind::Alltoall).messages, 4);
        assert_eq!(leaf.row(CollectiveKind::Alltoall).bytes, 4);
        assert_eq!(root.row(CollectiveKind::Barrier).calls, 1);
        assert!(root.total_messages() > leaf.total_messages());
    }

    #[test]
    #[should_panic]
    fn invalid_root_panics() {
        let comms = CommWorld::create(2);
        comms[0].gather(1u8, 5);
    }

    // ---- socket backend -------------------------------------------------

    /// What every rank of the full-suite test returns.
    type SuiteResult = (Option<Vec<u64>>, f64, f64, Vec<u32>, Vec<Vec<f64>>, String);

    /// The full collective suite over a real Unix-socket mesh: same calls,
    /// same results as the shm world — every payload crosses the OS through
    /// the wire codec.
    #[test]
    fn socket_backend_runs_the_full_collective_suite() {
        let comms = CommWorld::create_with(4, TransportKind::Socket);
        assert!(comms.iter().all(|c| c.transport_kind() == TransportKind::Socket));
        let results: Vec<SuiteResult> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        c.barrier();
                        let gathered = c.gather(c.rank() as u64 * 3, 0);
                        let sum = c.allreduce_sum(c.rank() as f64 + 1.0);
                        let min = c.allreduce_min(0.5 * (c.rank() as f64 + 1.0));
                        let all = c.allgather(c.rank() as u32);
                        let rows: Vec<Vec<f64>> = (0..c.size()).map(|d| vec![c.rank() as f64; d + 1]).collect();
                        let exchanged = c.alltoall(rows);
                        let hello = c.broadcast(2, || format!("from rank {}", c.rank()));
                        c.barrier();
                        (gathered, sum, min, all, exchanged, hello)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0].0, Some(vec![0, 3, 6, 9]));
        assert!(results[1..].iter().all(|r| r.0.is_none()));
        for (dest, (_, sum, min, all, exchanged, hello)) in results.iter().enumerate() {
            assert_eq!(*sum, 10.0);
            assert_eq!(*min, 0.5);
            assert_eq!(all, &vec![0, 1, 2, 3]);
            assert_eq!(hello, "from rank 2");
            for (src, row) in exchanged.iter().enumerate() {
                assert_eq!(row, &vec![src as f64; dest + 1]);
            }
        }
    }

    #[test]
    fn socket_backend_point_to_point_round_trips_exact_bits() {
        let comms = CommWorld::create_with(2, TransportKind::Socket);
        let payload = vec![0.1f64, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0];
        let expect = payload.clone();
        std::thread::scope(|s| {
            let sender = &comms[0];
            let receiver = &comms[1];
            let payload = payload.clone();
            s.spawn(move || {
                sender.isend(1, payload).wait().expect("send");
            });
            let got = receiver.irecv::<Vec<f64>>(0).wait(receiver).expect("receive");
            assert!(got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()));
        });
    }

    /// The kill-one-peer error path: a rank that disappears turns into a
    /// clean `CommError::PeerDisconnected` on the survivor — not a hang.
    #[test]
    fn dropped_socket_peer_surfaces_as_disconnect_error() {
        let mut comms = CommWorld::create_with(2, TransportKind::Socket);
        let survivor = comms.remove(0);
        drop(comms); // rank 1 departs; its transport shuts the stream down
        let err = survivor.irecv::<f64>(1).wait(&survivor).expect_err("peer is gone");
        match err {
            CommError::PeerDisconnected { peer } => assert_eq!(peer, 1),
            other => panic!("expected PeerDisconnected, got {other}"),
        }
        // The disconnect is sticky: later receives fail immediately too.
        let err = survivor.irecv::<f64>(1).wait(&survivor).expect_err("still gone");
        assert!(matches!(err, CommError::PeerDisconnected { peer: 1 }));
    }
}
