//! A miniature MPI-like communicator.
//!
//! SPH-EXA gathers per-rank energy measurements at the end of a run (§2); the
//! experiments here do the same through [`Comm::gather`]. The communicator also
//! provides a barrier and sum/max all-reductions, which the lock-step workload
//! executor uses to agree on per-step durations.
//!
//! Collective calls must be issued in the same order on every rank, exactly as
//! with MPI; there is no tag matching. Envelopes *are* matched by sender,
//! though: a receiver drains exactly one message per expected peer and stashes
//! out-of-order arrivals, so a fast rank racing ahead into the next collective
//! cannot corrupt a slower rank still draining the current one.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

type Payload = Box<dyn Any + Send>;
type Envelope = (usize, Payload);

/// The collective kinds a [`Comm`] counts traffic for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// [`Comm::barrier`].
    Barrier,
    /// [`Comm::gather`].
    Gather,
    /// [`Comm::broadcast`].
    Broadcast,
    /// [`Comm::allreduce_sum`] / [`Comm::allreduce_max`] / [`Comm::allreduce_min`].
    Allreduce,
    /// [`Comm::allgather`].
    Allgather,
    /// [`Comm::alltoall`].
    Alltoall,
}

impl CollectiveKind {
    /// Stable lowercase label, used in metric names (`comm.<label>.messages`).
    pub fn label(&self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::Alltoall => "alltoall",
        }
    }

    /// Every kind, in declaration order.
    pub fn all() -> [CollectiveKind; 6] {
        [
            CollectiveKind::Barrier,
            CollectiveKind::Gather,
            CollectiveKind::Broadcast,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
            CollectiveKind::Alltoall,
        ]
    }
}

/// Per-rank traffic accounting, one row per [`CollectiveKind`].
///
/// Counts are attributed to the collective the *application* called: the
/// all-reductions and `allgather` are internally composed from gather +
/// broadcast, but their envelopes count under `Allreduce`/`Allgather`, not
/// under the primitives — this is the per-kind baseline a future real
/// transport backend will be judged against.
///
/// `calls` counts invocations on this rank, `messages` counts envelopes this
/// rank *sent*, and `bytes` approximates their payload as the inline size of
/// the sent value (`size_of::<T>()`); heap contents behind pointers (e.g. the
/// elements of a `Vec` payload) are not chased, since payloads are only
/// constrained by `T: Send`.
#[derive(Default)]
pub struct CommStats {
    rows: [(AtomicU64, AtomicU64, AtomicU64); 6],
}

impl CommStats {
    fn record(&self, kind: CollectiveKind, messages: u64, bytes: u64) {
        let (calls, msgs, byts) = &self.rows[kind as usize];
        calls.fetch_add(1, Ordering::Relaxed);
        msgs.fetch_add(messages, Ordering::Relaxed);
        byts.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Point-in-time copy of every row.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            rows: CollectiveKind::all()
                .into_iter()
                .map(|kind| {
                    let (calls, msgs, bytes) = &self.rows[kind as usize];
                    CommStatsRow {
                        kind,
                        calls: calls.load(Ordering::Relaxed),
                        messages: msgs.load(Ordering::Relaxed),
                        bytes: bytes.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }
}

/// One row of a [`CommStatsSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommStatsRow {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Invocations on this rank.
    pub calls: u64,
    /// Envelopes sent by this rank.
    pub messages: u64,
    /// Approximate payload bytes sent by this rank (inline sizes).
    pub bytes: u64,
}

/// Point-in-time copy of a communicator's [`CommStats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// One row per collective kind, in [`CollectiveKind::all`] order.
    pub rows: Vec<CommStatsRow>,
}

impl CommStatsSnapshot {
    /// The row for `kind`.
    pub fn row(&self, kind: CollectiveKind) -> CommStatsRow {
        self.rows[kind as usize]
    }

    /// Total envelopes sent across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.rows.iter().map(|r| r.messages).sum()
    }
}

/// Factory producing one [`Comm`] handle per rank.
pub struct CommWorld;

impl CommWorld {
    /// Create communicator handles for `n` ranks.
    pub fn create(n: usize) -> Vec<Comm> {
        assert!(n >= 1, "communicator needs at least one rank");
        let barrier = Arc::new(Barrier::new(n));
        let channels: Vec<(Sender<Envelope>, Receiver<Envelope>)> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Envelope>> = channels.iter().map(|(s, _)| s.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, receiver))| Comm {
                rank,
                size: n,
                barrier: Arc::clone(&barrier),
                senders: senders.clone(),
                receiver,
                pending: Mutex::new(VecDeque::new()),
                stats: CommStats::default(),
            })
            .collect()
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    barrier: Arc<Barrier>,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Envelopes received while waiting for a specific sender. A rank that
    /// finished collective `k` may already be sending for collective `k + 1`
    /// while we still drain `k`; its early envelope is parked here until the
    /// matching receive comes around.
    pending: Mutex<VecDeque<Envelope>>,
    /// Per-collective traffic accounting for this rank.
    stats: CommStats,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.stats.record(CollectiveKind::Barrier, 0, 0);
        self.barrier.wait();
    }

    /// Snapshot of this rank's per-collective traffic counters.
    pub fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }

    /// Receive the next envelope from a specific sender, parking any envelopes
    /// other ranks delivered in the meantime. Per-sender channel FIFO plus
    /// per-sender matching is what keeps back-to-back collectives from
    /// cross-talking when ranks run at different speeds.
    fn recv_from(&self, src: usize) -> Payload {
        {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            if let Some(pos) = pending.iter().position(|(from, _)| *from == src) {
                return pending.remove(pos).expect("position just found").1;
            }
        }
        loop {
            let (from, payload) = self.receiver.recv().expect("recv failed");
            if from == src {
                return payload;
            }
            self.pending.lock().expect("pending queue poisoned").push_back((from, payload));
        }
    }

    /// Gather one value from every rank at `root`. Returns `Some(values)` (in
    /// rank order) on the root and `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        self.stats.record(CollectiveKind::Gather, 1, std::mem::size_of::<T>() as u64);
        self.gather_inner(value, root)
    }

    fn gather_inner<T: Send + 'static>(&self, value: T, root: usize) -> Option<Vec<T>> {
        assert!(root < self.size, "root {root} out of range");
        self.senders[root]
            .send((self.rank, Box::new(value)))
            .expect("gather: send failed");
        if self.rank != root {
            return None;
        }
        Some(
            (0..self.size)
                .map(|src| *self.recv_from(src).downcast::<T>().expect("gather: type mismatch"))
                .collect(),
        )
    }

    /// Broadcast a value from `root` to every rank. The root passes
    /// `Some(value)`, the others `None`.
    pub fn broadcast<T: Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        let sends = if self.rank == root { self.size as u64 - 1 } else { 0 };
        self.stats.record(
            CollectiveKind::Broadcast,
            sends,
            sends * std::mem::size_of::<T>() as u64,
        );
        self.broadcast_inner(value, root)
    }

    fn broadcast_inner<T: Clone + Send + 'static>(&self, value: Option<T>, root: usize) -> T {
        assert!(root < self.size, "root {root} out of range");
        if self.rank == root {
            let value = value.expect("broadcast: root must provide a value");
            for (dest, sender) in self.senders.iter().enumerate() {
                if dest != root {
                    sender.send((root, Box::new(value.clone()))).expect("broadcast: send failed");
                }
            }
            value
        } else {
            *self.recv_from(root).downcast::<T>().expect("broadcast: type mismatch")
        }
    }

    /// Count one reduction composed of a gather send plus the root's
    /// broadcast fan-out, attributed to `kind`.
    fn record_composed(&self, kind: CollectiveKind, payload_bytes: u64, broadcast_bytes: u64) {
        let broadcast_sends = if self.rank == 0 { self.size as u64 - 1 } else { 0 };
        self.stats.record(
            kind,
            1 + broadcast_sends,
            payload_bytes + broadcast_sends * broadcast_bytes,
        );
    }

    /// Sum an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let total = gathered.map(|v| v.iter().sum::<f64>());
        self.broadcast_inner(total, 0)
    }

    /// Maximum of an `f64` across all ranks; every rank receives the result.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let max = gathered.map(|v| v.into_iter().fold(f64::NEG_INFINITY, f64::max));
        self.broadcast_inner(max, 0)
    }

    /// Minimum of an `f64` across all ranks; every rank receives the result.
    /// This is how the distributed propagator agrees on a global Courant
    /// timestep: each rank reduces over its owned particles, then the world
    /// takes the minimum.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.record_composed(CollectiveKind::Allreduce, 8, 8);
        let gathered = self.gather_inner(value, 0);
        let min = gathered.map(|v| v.into_iter().fold(f64::INFINITY, f64::min));
        self.broadcast_inner(min, 0)
    }

    /// Gather one value from every rank onto *every* rank, in rank order.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let inline = std::mem::size_of::<T>() as u64;
        self.record_composed(CollectiveKind::Allgather, inline, inline * self.size as u64);
        let gathered = self.gather_inner(value, 0);
        self.broadcast_inner(gathered, 0)
    }

    /// Personalised all-to-all: `outgoing[d]` is delivered to rank `d`, and the
    /// returned vector holds one value per source rank (`result[s]` came from
    /// rank `s`). This is the halo-exchange / particle-migration primitive.
    pub fn alltoall<T: Send + 'static>(&self, outgoing: Vec<T>) -> Vec<T> {
        self.stats.record(
            CollectiveKind::Alltoall,
            self.size as u64,
            (self.size * std::mem::size_of::<T>()) as u64,
        );
        assert_eq!(
            outgoing.len(),
            self.size,
            "alltoall: need one payload per destination rank"
        );
        for (dest, value) in outgoing.into_iter().enumerate() {
            self.senders[dest]
                .send((self.rank, Box::new(value)))
                .expect("alltoall: send failed");
        }
        (0..self.size)
            .map(|src| *self.recv_from(src).downcast::<T>().expect("alltoall: type mismatch"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_world<F>(n: usize, f: F) -> Vec<f64>
    where
        F: Fn(&Comm) -> f64 + Sync,
    {
        let comms = CommWorld::create(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| f(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn single_rank_world_works() {
        let comms = CommWorld::create(1);
        assert_eq!(comms[0].size(), 1);
        assert_eq!(comms[0].gather(5u32, 0), Some(vec![5]));
        assert_eq!(comms[0].allreduce_sum(2.0), 2.0);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let comms = CommWorld::create(4);
        let results: Vec<Option<Vec<usize>>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.gather(c.rank() * 10, 0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_world(4, |c| c.allreduce_sum(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12));
        let maxes = run_world(3, |c| c.allreduce_max(c.rank() as f64));
        assert!(maxes.iter().all(|&m| (m - 2.0).abs() < 1e-12));
    }

    #[test]
    fn allreduce_min_delivers_global_minimum_to_every_rank() {
        // Courant-style reduction: every rank proposes a local dt, all agree
        // on the smallest one. The min is exact in floating point — no
        // associativity slack.
        let mins = run_world(4, |c| c.allreduce_min(0.1 * (c.rank() as f64 + 1.0)));
        assert!(mins.iter().all(|&m| m == 0.1));
        let single = run_world(1, |c| c.allreduce_min(0.7));
        assert_eq!(single, vec![0.7]);
        // Negative values reduce just as well.
        let neg = run_world(3, |c| c.allreduce_min(-(c.rank() as f64)));
        assert!(neg.iter().all(|&m| m == -2.0));
    }

    #[test]
    fn allreduce_min_is_consistent_with_max() {
        let comms = CommWorld::create(3);
        let results: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| s.spawn(|| (c.allreduce_min(c.rank() as f64), c.allreduce_max(c.rank() as f64))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&(lo, hi)| lo == 0.0 && hi == 2.0));
    }

    #[test]
    fn allgather_collects_on_every_rank() {
        let comms = CommWorld::create(3);
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms.iter().map(|c| s.spawn(|| c.allgather(c.rank() * 2))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == &vec![0, 2, 4]));
    }

    #[test]
    fn alltoall_routes_personalised_payloads() {
        let comms = CommWorld::create(4);
        let results: Vec<Vec<(usize, usize)>> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        // Rank r sends (r, d) to destination d.
                        let outgoing: Vec<(usize, usize)> = (0..c.size()).map(|d| (c.rank(), d)).collect();
                        c.alltoall(outgoing)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, incoming) in results.iter().enumerate() {
            for (src, &(from, to)) in incoming.iter().enumerate() {
                assert_eq!((from, to), (src, dest));
            }
        }
    }

    #[test]
    fn repeated_alltoalls_do_not_cross_talk() {
        // Two back-to-back exchanges with different payload shapes: the
        // per-sender matching must keep each exchange's envelopes separate.
        type Exchange = Vec<Vec<u32>>;
        let comms = CommWorld::create(3);
        let results: Vec<(Exchange, Exchange)> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let first: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![c.rank() as u32; d + 1]).collect();
                        let a = c.alltoall(first);
                        let second: Vec<Vec<u32>> = (0..c.size()).map(|d| vec![100 + c.rank() as u32; d]).collect();
                        let b = c.alltoall(second);
                        (a, b)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (dest, (a, b)) in results.iter().enumerate() {
            for (src, row) in a.iter().enumerate() {
                assert_eq!(row, &vec![src as u32; dest + 1]);
            }
            for (src, row) in b.iter().enumerate() {
                assert_eq!(row, &vec![100 + src as u32; dest]);
            }
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let comms = CommWorld::create(3);
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|c| {
                    s.spawn(|| {
                        let value = (c.rank() == 1).then(|| "hello".to_string());
                        c.broadcast(value, 1)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r == "hello"));
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    c.barrier();
                    // After the barrier every rank must observe all increments.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    fn stats_attribute_traffic_to_the_called_collective() {
        let comms = CommWorld::create(4);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    c.barrier();
                    let _ = c.gather(c.rank() as u64, 0);
                    let _ = c.broadcast((c.rank() == 0).then_some(1.0f64), 0);
                    let _ = c.allreduce_sum(1.0);
                    let _ = c.allreduce_min(1.0);
                    let _ = c.allgather(c.rank() as u32);
                    let _ = c.alltoall(vec![0u8; c.size()]);
                });
            }
        });
        let root = comms[0].stats();
        let leaf = comms[3].stats();
        // Composed collectives count under their own kind, not the
        // primitives they are built from.
        assert_eq!(root.row(CollectiveKind::Gather).calls, 1);
        assert_eq!(root.row(CollectiveKind::Gather).messages, 1);
        assert_eq!(root.row(CollectiveKind::Gather).bytes, 8);
        assert_eq!(root.row(CollectiveKind::Broadcast).messages, 3);
        assert_eq!(leaf.row(CollectiveKind::Broadcast).messages, 0);
        assert_eq!(root.row(CollectiveKind::Allreduce).calls, 2);
        // Root: gather send + 3 broadcast sends, per reduction.
        assert_eq!(root.row(CollectiveKind::Allreduce).messages, 8);
        assert_eq!(leaf.row(CollectiveKind::Allreduce).messages, 2);
        assert_eq!(leaf.row(CollectiveKind::Allreduce).bytes, 16);
        assert_eq!(root.row(CollectiveKind::Allgather).calls, 1);
        assert_eq!(leaf.row(CollectiveKind::Alltoall).messages, 4);
        assert_eq!(leaf.row(CollectiveKind::Alltoall).bytes, 4);
        assert_eq!(root.row(CollectiveKind::Barrier).calls, 1);
        assert!(root.total_messages() > leaf.total_messages());
    }

    #[test]
    #[should_panic]
    fn invalid_root_panics() {
        let comms = CommWorld::create(2);
        comms[0].gather(1u8, 5);
    }
}
