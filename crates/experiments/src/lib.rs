//! # experiments — regenerating every table and figure of the paper
//!
//! One binary per experiment (see `src/bin/`), all built on the helpers in this
//! library so the same campaigns can also be exercised from integration tests
//! and benchmarks.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — simulation and computing-system parameters |
//! | `fig1_validation` | Figure 1 — PMT vs Slurm energy, 8→48 GPU cards |
//! | `fig2_device_breakdown` | Figure 2 — device-level energy breakdown |
//! | `fig3_function_breakdown` | Figure 3 — per-function energy breakdown |
//! | `fig4_edp_frequency` | Figure 4 — EDP vs GPU frequency and problem size |
//! | `fig5_function_edp` | Figure 5 — per-function EDP vs GPU frequency |
//! | `autotune_convergence` | online governor vs offline sweep (beyond the paper) |
//! | `run_all` | everything above except `autotune_convergence`, writing CSV series to `experiments_output/` |
//!
//! By default the campaigns run at a **reduced scale** (fewer nodes and
//! timesteps than the paper's production runs) so that `run_all` completes in
//! seconds; set `EXPERIMENTS_FULL_SCALE=1` to use the paper's full node counts
//! and 100 timesteps. Scale only affects absolute energies, not the breakdown
//! percentages, ratios or EDP shapes that the figures report.

use energy_analysis::device_breakdown::{device_breakdown, DeviceBreakdown};
use energy_analysis::edp::EdpPoint;
use energy_analysis::function_breakdown::{function_breakdown, FunctionBreakdown};
use energy_analysis::validation::{pmt_node_level_energy, PmtSlurmComparison};
use energy_analysis::Table;
use hwmodel::arch::SystemKind;
use sphsim::scenario;
use sphsim::{run_campaign, CampaignConfig, CampaignResult, Scenario, ScenarioRef, MAIN_LOOP_LABEL};
use std::path::PathBuf;
use std::sync::Arc;

/// The two Table-1 production scenarios of the paper, from the registry.
pub fn table1_scenarios() -> Vec<ScenarioRef> {
    ["Turb", "Evr"]
        .iter()
        .map(|name| scenario::get(name).expect("built-in scenario"))
        .collect()
}

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few nodes and a reduced number of timesteps: seconds of runtime,
    /// identical shapes.
    Reduced,
    /// The paper's production scale (Table 1 largest runs, 100 timesteps).
    Full,
}

impl Scale {
    /// Read the scale from the `EXPERIMENTS_FULL_SCALE` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("EXPERIMENTS_FULL_SCALE").map(|v| v == "1").unwrap_or(false) {
            Scale::Full
        } else {
            Scale::Reduced
        }
    }

    /// Number of timesteps to run.
    pub fn timesteps(&self) -> u64 {
        match self {
            Scale::Reduced => 20,
            Scale::Full => 100,
        }
    }

    /// Number of ranks (GPU dies) for the breakdown experiments on a system.
    pub fn breakdown_ranks(&self, system: SystemKind, scenario: &dyn Scenario) -> usize {
        match self {
            Scale::Reduced => match system {
                SystemKind::LumiG => 16,   // 2 nodes
                SystemKind::CscsA100 => 8, // 2 nodes
                SystemKind::MiniHpc => 2,  // 1 node
            },
            Scale::Full => {
                // Largest Table-1-style configuration for the scenario.
                let total = *scenario.global_particle_options().last().expect("particle options available");
                (total / scenario.particles_per_gpu()).round() as usize
            }
        }
    }
}

/// Directory where experiment CSV series are written.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("experiments_output");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a table's CSV rendering into the output directory.
pub fn write_csv(table: &Table, filename: &str) -> std::io::Result<PathBuf> {
    let path = output_dir().join(filename);
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Parse a `--trace <path>` / `--trace=<path>` CLI flag and export it as
/// `SPHSIM_TRACE`, so every simulation built afterwards shares the
/// process-wide telemetry sink (Chrome trace at `<path>`, JSONL stream at
/// `<path>.jsonl`). Must run at the top of `main`, before the first
/// simulation is constructed — the environment hook resolves once per
/// process.
pub fn apply_trace_flag() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next()?;
            std::env::set_var("SPHSIM_TRACE", &path);
            return Some(PathBuf::from(path));
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            std::env::set_var("SPHSIM_TRACE", path);
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Flush the process-wide telemetry sink (if tracing is active) and print its
/// end-of-run summary through the shared `analysis` emitters: span
/// aggregates, gauges, counters and histograms. A no-op without
/// `SPHSIM_TRACE`/`--trace`.
pub fn print_telemetry_summary(title: &str) {
    let Some(sink) = telemetry::from_env() else {
        return;
    };
    sink.flush();
    let events = sink.events_snapshot();
    let snapshot = sink.metrics().snapshot();
    for table in energy_analysis::telemetry_tables(title, &events, &snapshot) {
        println!("{}", table.to_text());
    }
}

/// Run one campaign with the paper defaults for `system`/`scenario` at the
/// given rank count and timestep count.
pub fn campaign(system: SystemKind, scenario: ScenarioRef, n_ranks: usize, timesteps: u64) -> CampaignResult {
    let mut config = CampaignConfig::paper_defaults(system, scenario, n_ranks);
    config.timesteps = timesteps;
    run_campaign(&config)
}

/// Reduced-scale miniHPC configuration shared by the autotune-facing
/// experiment binaries (`autotune_convergence`, `scenario_gallery`):
/// identical per-stage EDP shape to the paper-scale runs, seconds of total
/// runtime.
pub fn reduced_minihpc_config(scenario: ScenarioRef, timesteps: u64) -> CampaignConfig {
    let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, scenario, 2);
    config.particles_per_rank = 25.0e6;
    config.timesteps = timesteps;
    config.setup_seconds = 10.0;
    config.teardown_seconds = 2.0;
    config
}

/// Run one campaign under a per-stage EDP hill-climb [`autotune::Governor`]
/// wired over the campaign's own cluster, returning the governor for
/// inspection alongside the measured result.
pub fn run_governed_edp_campaign(config: &CampaignConfig) -> (Arc<autotune::Governor>, CampaignResult) {
    let labels = config.scenario.stage_labels();
    let mut governor_slot: Option<Arc<autotune::Governor>> = None;
    let result = sphsim::run_campaign_governed(config, |cluster| {
        let actuator = Arc::new(autotune::ClusterActuator::new(cluster.clone()));
        let governor = Arc::new(autotune::Governor::new(
            autotune::GovernorConfig::edp_hill_climb(labels),
            actuator,
        ));
        governor_slot = Some(Arc::clone(&governor));
        vec![governor]
    });
    (governor_slot.expect("wire closure ran"), result)
}

/// Convergence failures of a governed run: every pipeline stage of the
/// scenario must have been seen by the governor and must have converged to a
/// min-EDP frequency (the search's built-in one-grid-step criterion).
pub fn governor_convergence_failures(scenario: &dyn Scenario, governor: &autotune::Governor) -> Vec<String> {
    let mut failures = Vec::new();
    let report = governor.report();
    if report.len() != scenario.stage_labels().len() {
        failures.push(format!(
            "{}: governor saw {} stages, pipeline has {}",
            scenario.name(),
            report.len(),
            scenario.stage_labels().len()
        ));
    }
    for stage in &report {
        if !stage.converged {
            failures.push(format!(
                "{}: stage {} did not converge in {} observations",
                scenario.name(),
                stage.label,
                stage.observations
            ));
        }
    }
    failures
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Regenerate Table 1: simulation and computing-system parameters.
pub fn table1() -> (Table, Table) {
    let mut sim = Table::new(
        "Table 1 (top): simulation parameters",
        &[
            "simulation",
            "global particles [billions]",
            "particles per GPU",
            "timesteps",
        ],
    );
    for scenario in table1_scenarios() {
        let billions: Vec<String> = scenario
            .global_particle_options()
            .iter()
            .map(|p| format!("{:.1}", p / 1.0e9))
            .collect();
        sim.add_row(&[
            scenario.name().to_string(),
            billions.join("|"),
            format!("{:.0e}", scenario.particles_per_gpu()),
            scenario.timesteps().to_string(),
        ]);
    }

    let mut sys = Table::new(
        "Table 1 (bottom): computing-system parameters",
        &[
            "system",
            "CPUs per node",
            "GPUs per node",
            "GPU compute freq [MHz]",
            "GPU memory freq [MHz]",
        ],
    );
    for kind in SystemKind::all() {
        let node = kind.node_builder().build();
        let spec = node.spec();
        let gpu = &spec.gpus[0];
        let cpus = spec
            .cpus
            .iter()
            .map(|c| format!("{} ({} cores)", c.name, c.cores))
            .collect::<Vec<_>>()
            .join(" + ");
        let gpus = format!("{}x {} ({} dies/card)", spec.gpus.len(), gpu.name, gpu.dies_per_card);
        sys.add_row(&[
            kind.name().to_string(),
            cpus,
            gpus,
            format!("{:.0}", kind.nominal_gpu_frequency_hz() / 1.0e6),
            format!("{:.0}", gpu.memory_freq_hz / 1.0e6),
        ]);
    }
    (sim, sys)
}

// ---------------------------------------------------------------------------
// Figure 1: PMT vs Slurm validation
// ---------------------------------------------------------------------------

/// Run the Figure 1 sweep on one system: Subsonic Turbulence on `gpu_cards`
/// physical cards, comparing PMT (time-stepping loop, node-level counters) with
/// Slurm (whole job).
pub fn fig1_series(system: SystemKind, gpu_cards: &[usize], timesteps: u64) -> Vec<PmtSlurmComparison> {
    let dies_per_card = system.node_builder().spec().dies_per_card();
    let turb = scenario::get("Turb").expect("built-in scenario");
    gpu_cards
        .iter()
        .map(|&cards| {
            let n_ranks = cards * dies_per_card;
            let result = campaign(system, turb.clone(), n_ranks, timesteps);
            let pmt = pmt_node_level_energy(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
            PmtSlurmComparison {
                gpu_cards: cards,
                pmt_energy_j: pmt,
                slurm_energy_j: result.sacct.consumed_energy_j,
            }
        })
        .collect()
}

/// Render a Figure 1 series as a table.
pub fn fig1_table(system: SystemKind, series: &[PmtSlurmComparison]) -> Table {
    let mut t = Table::new(
        format!("Figure 1: PMT vs Slurm energy — {}", system.name()),
        &[
            "gpu_cards",
            "pmt_energy_j",
            "slurm_energy_j",
            "pmt_over_slurm",
            "underestimation_%",
        ],
    );
    for c in series {
        t.add_row(&[
            c.gpu_cards.to_string(),
            format!("{:.0}", c.pmt_energy_j),
            format!("{:.0}", c.slurm_energy_j),
            format!("{:.3}", c.ratio()),
            format!("{:.1}", c.underestimation_percent()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 2: device breakdown
// ---------------------------------------------------------------------------

/// The four runs of Figure 2 in paper order.
pub fn fig2_runs() -> Vec<(SystemKind, ScenarioRef, &'static str)> {
    let turb = scenario::get("Turb").expect("built-in scenario");
    let evr = scenario::get("Evr").expect("built-in scenario");
    vec![
        (SystemKind::LumiG, turb.clone(), "LUMI-Turb"),
        (SystemKind::LumiG, evr.clone(), "LUMI-Evr"),
        (SystemKind::CscsA100, turb, "CSCS-A100-Turb"),
        (SystemKind::CscsA100, evr, "CSCS-A100-Evr"),
    ]
}

/// Run Figure 2: device-level breakdown of the four runs.
pub fn fig2_breakdowns(scale: Scale) -> Vec<(String, DeviceBreakdown)> {
    fig2_runs()
        .into_iter()
        .map(|(system, scenario, label)| {
            let ranks = scale.breakdown_ranks(system, scenario.as_ref());
            let result = campaign(system, scenario, ranks, scale.timesteps());
            let breakdown = device_breakdown(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
            (label.to_string(), breakdown)
        })
        .collect()
}

/// Render Figure 2 as a table.
pub fn fig2_table(breakdowns: &[(String, DeviceBreakdown)]) -> Table {
    let mut t = Table::new(
        "Figure 2: device breakdown of consumed energy",
        &["run", "GPU_%", "CPU_%", "MEM_%", "Other_%", "total_MJ"],
    );
    for (label, b) in breakdowns {
        let p = b.percentages();
        t.add_row(&[
            label.clone(),
            format!("{:.1}", p[0]),
            format!("{:.1}", p[1]),
            format!("{:.1}", p[2]),
            format!("{:.1}", p[3]),
            format!("{:.2}", b.total_mj()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 3: per-function breakdown
// ---------------------------------------------------------------------------

/// Run Figure 3: per-function energy breakdown for the four runs of Figure 2.
pub fn fig3_breakdowns(scale: Scale) -> Vec<(String, FunctionBreakdown)> {
    fig2_runs()
        .into_iter()
        .map(|(system, scenario, label)| {
            let ranks = scale.breakdown_ranks(system, scenario.as_ref());
            let result = campaign(system, scenario, ranks, scale.timesteps());
            let fb = function_breakdown(&result.rank_reports, &result.mapping, &[MAIN_LOOP_LABEL]);
            (label.to_string(), fb)
        })
        .collect()
}

/// Render one run's Figure 3 breakdown as a table (GPU and CPU shares).
pub fn fig3_table(label: &str, fb: &FunctionBreakdown) -> Table {
    let mut t = Table::new(
        format!("Figure 3: per-function energy breakdown — {label}"),
        &["function", "gpu_energy_J", "gpu_share_%", "cpu_energy_J", "cpu_share_%"],
    );
    for name in fb.labels_by_energy() {
        let f = fb.function(&name).expect("label from the same breakdown");
        t.add_row(&[
            name.clone(),
            format!("{:.0}", f.gpu_j),
            format!("{:.2}", fb.gpu_share_percent(&name)),
            format!("{:.0}", f.cpu_j),
            format!("{:.2}", fb.cpu_share_percent(&name)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: GPU frequency scaling on miniHPC
// ---------------------------------------------------------------------------

/// GPU compute frequencies swept in the paper (Figures 4 and 5), in Hz.
pub fn fig4_frequencies() -> Vec<f64> {
    vec![1005.0e6, 1110.0e6, 1215.0e6, 1305.0e6, 1410.0e6]
}

/// Particle-per-GPU counts swept in Figure 4 (cube side lengths from the paper).
pub fn fig4_particle_cubes() -> Vec<u64> {
    vec![200, 250, 350, 450]
}

/// Run the Figure 4 sweep: EDP of the turbulence run on miniHPC for each
/// (particles-per-GPU, frequency) pair.
pub fn fig4_sweep(timesteps: u64) -> Vec<(u64, Vec<EdpPoint>)> {
    fig4_particle_cubes()
        .into_iter()
        .map(|cube| {
            let particles_per_rank = (cube * cube * cube) as f64;
            let turb = scenario::get("Turb").expect("built-in scenario");
            let points = fig4_frequencies()
                .into_iter()
                .map(|freq| {
                    let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, turb.clone(), 2);
                    config.particles_per_rank = particles_per_rank;
                    config.timesteps = timesteps;
                    config.gpu_frequency_hz = Some(freq);
                    let result = run_campaign(&config);
                    EdpPoint {
                        frequency_hz: freq,
                        energy_j: result.true_main_loop_energy_j,
                        time_s: result.main_loop_duration_s(),
                    }
                })
                .collect();
            (cube, points)
        })
        .collect()
}

/// Render Figure 4 as a table of normalised EDP values.
pub fn fig4_table(sweep: &[(u64, Vec<EdpPoint>)]) -> Table {
    let mut t = Table::new(
        "Figure 4: normalised EDP vs GPU compute frequency (miniHPC, Subsonic Turbulence)",
        &[
            "particles_per_gpu",
            "frequency_MHz",
            "energy_J",
            "time_s",
            "edp_normalized_%",
        ],
    );
    for (cube, points) in sweep {
        let normalized = energy_analysis::normalized_edp_series(points, 1410.0e6)
            .expect("figure 4 sweeps are non-empty with positive EDP");
        for (point, (freq, norm)) in points.iter().zip(normalized) {
            t.add_row(&[
                format!("{cube}^3"),
                format!("{:.0}", freq / 1.0e6),
                format!("{:.0}", point.energy_j),
                format!("{:.1}", point.time_s),
                format!("{:.1}", norm * 100.0),
            ]);
        }
    }
    t
}

/// Run the Figure 5 sweep: per-function EDP on miniHPC with 450³ particles per
/// GPU, across the frequency range, normalised per function to the 1410 MHz run.
pub fn fig5_sweep(timesteps: u64) -> Vec<(String, Vec<(f64, f64)>)> {
    let cube = 450u64;
    let particles_per_rank = (cube * cube * cube) as f64;
    // Collect per-function (freq, edp) samples.
    let mut per_function: std::collections::BTreeMap<String, Vec<(f64, f64)>> = std::collections::BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let turb = scenario::get("Turb").expect("built-in scenario");
    for freq in fig4_frequencies() {
        let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, turb.clone(), 2);
        config.particles_per_rank = particles_per_rank;
        config.timesteps = timesteps;
        config.gpu_frequency_hz = Some(freq);
        let result = run_campaign(&config);
        let fb = function_breakdown(&result.rank_reports, &result.mapping, &[MAIN_LOOP_LABEL]);
        for f in &fb.functions {
            if !per_function.contains_key(&f.label) {
                order.push(f.label.clone());
            }
            let edp = (f.gpu_j + f.cpu_j + f.mem_j) * f.time_s;
            per_function.entry(f.label.clone()).or_default().push((freq, edp));
        }
    }
    // Normalise each function to its 1410 MHz point.
    order
        .into_iter()
        .map(|label| {
            let points = per_function.remove(&label).unwrap_or_default();
            let baseline = points
                .iter()
                .find(|(f, _)| (*f - 1410.0e6).abs() < 1.0e3)
                .map(|(_, e)| *e)
                .unwrap_or(1.0);
            let series = points
                .into_iter()
                .map(|(f, e)| (f, if baseline > 0.0 { e / baseline } else { 0.0 }))
                .collect();
            (label, series)
        })
        .collect()
}

/// Render Figure 5 as a table.
pub fn fig5_table(sweep: &[(String, Vec<(f64, f64)>)]) -> Table {
    let mut t = Table::new(
        "Figure 5: normalised per-function EDP vs GPU compute frequency (miniHPC, 450^3 per GPU)",
        &["function", "frequency_MHz", "edp_normalized_%"],
    );
    for (label, series) in sweep {
        for (freq, norm) in series {
            t.add_row(&[
                label.clone(),
                format!("{:.0}", freq / 1.0e6),
                format!("{:.1}", norm * 100.0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_three_systems_and_two_cases() {
        let (sim, sys) = table1();
        assert_eq!(sim.row_count(), 2);
        assert_eq!(sys.row_count(), 3);
        assert!(sys.to_text().contains("LUMI-G"));
        assert!(sim.to_csv().contains("14.7"));
    }

    #[test]
    fn table1_scenarios_are_the_paper_pair() {
        let pair = table1_scenarios();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].short_name(), "Turb");
        assert_eq!(pair[1].short_name(), "Evr");
    }

    #[test]
    fn fig1_small_sweep_shows_slurm_above_pmt() {
        let series = fig1_series(SystemKind::CscsA100, &[1, 2], 5);
        assert_eq!(series.len(), 2);
        for c in &series {
            assert!(c.slurm_energy_j > c.pmt_energy_j, "Slurm must include the setup phase");
            // With only 5 timesteps the setup phase dominates the Slurm window,
            // so the ratio is small but must stay strictly between 0 and 1.
            assert!(c.ratio() > 0.01 && c.ratio() < 1.0, "ratio {}", c.ratio());
        }
        // Energy grows with the number of cards.
        assert!(series[1].slurm_energy_j > series[0].slurm_energy_j);
        let table = fig1_table(SystemKind::CscsA100, &series);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn fig4_frequencies_span_paper_range() {
        let f = fig4_frequencies();
        assert_eq!(*f.last().unwrap(), 1410.0e6);
        assert_eq!(f[0], 1005.0e6);
        assert_eq!(fig4_particle_cubes(), vec![200, 250, 350, 450]);
    }

    #[test]
    fn scale_defaults_to_reduced() {
        let turb = scenario::get("Turb").unwrap();
        let evr = scenario::get("Evr").unwrap();
        assert_eq!(Scale::Reduced.timesteps(), 20);
        assert_eq!(Scale::Full.timesteps(), 100);
        assert!(Scale::Full.breakdown_ranks(SystemKind::LumiG, turb.as_ref()) > 90);
        assert_eq!(Scale::Reduced.breakdown_ranks(SystemKind::CscsA100, evr.as_ref()), 8);
    }
}
