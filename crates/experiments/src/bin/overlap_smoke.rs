//! overlap_smoke — is the ghost exchange actually hidden under compute?
//!
//! The overlapped step schedule posts the ghost refresh nonblocking, runs the
//! interior momentum rows while the wires are busy, and only then waits. This
//! smoke quantifies how well that works: a 4-rank Evrard run (the scenario
//! with the heaviest per-particle momentum work, hence the most interior
//! compute to hide under) accumulates [`sphsim::OverlapStats`] on every rank,
//! and the merged hidden fraction
//!
//! ```text
//! hidden = overlapped / (posted + overlapped + waited)
//! ```
//!
//! must reach 50%. The gate is ENFORCED when the host has >= 4 cores (the
//! rank threads are the parallelism: with fewer cores the interior compute
//! and the peer ranks' sends serialise, so waiting is physically mandatory)
//! and reported-but-skipped otherwise. `--transport shm|socket` selects the
//! backend; the default shm mirrors the bench-smoke CI job.

use cluster::TransportKind;
use sphsim::distributed::run_distributed_with_transport;
use sphsim::{scenario, OverlapStats};

fn main() {
    // One kernel thread per rank thread: four ranks, four threads total.
    std::env::set_var("SPHSIM_THREADS", "1");
    let args: Vec<String> = std::env::args().collect();
    let transport = match args.iter().position(|a| a == "--transport") {
        Some(i) => {
            let value = args.get(i + 1).map(String::as_str).unwrap_or("");
            TransportKind::parse(value).unwrap_or_else(|| {
                eprintln!("--transport must be 'shm' or 'socket', got '{value}'");
                std::process::exit(2);
            })
        }
        None => TransportKind::Shm,
    };
    let evrard = scenario::all()
        .into_iter()
        .find(|s| s.short_name() == "Evr")
        .expect("Evrard scenario is registered");
    let (n_ranks, n_total, steps) = (4usize, 4000usize, 5u64);
    println!(
        "overlap_smoke: {} | {n_ranks} ranks over {} | {n_total} particles | {steps} steps\n",
        evrard.short_name(),
        transport.label(),
    );

    let shards = run_distributed_with_transport(evrard, n_ranks, n_total, 7, steps, transport);
    let mut merged = OverlapStats::default();
    for shard in &shards {
        println!(
            "  rank {}: posted {:.3} ms, overlapped {:.3} ms, waited {:.3} ms -> {:.0}% hidden",
            shard.rank,
            shard.overlap.posted_s * 1e3,
            shard.overlap.overlapped_s * 1e3,
            shard.overlap.waited_s * 1e3,
            shard.overlap.hidden_fraction() * 100.0,
        );
        merged.merge(&shard.overlap);
    }
    let hidden = merged.hidden_fraction();
    println!("\n  merged hidden fraction: {:.1}%", hidden * 100.0);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!(
            "\nnote: host has {cores} core(s); the >= 50% hidden-fraction gate needs >= 4 cores \
             (rank threads serialise below that) and is SKIPPED here (reported, not enforced)."
        );
        return;
    }
    if hidden < 0.5 {
        eprintln!(
            "\noverlap gate FAILED: {:.1}% of ghost-exchange time hidden under interior \
             momentum work; the overlapped schedule requires >= 50%",
            hidden * 100.0
        );
        std::process::exit(1);
    }
    println!("\noverlap gate passed: >= 50% of ghost-exchange time hidden under interior compute.");
}
