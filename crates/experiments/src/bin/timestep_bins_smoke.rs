//! timestep_bins_smoke — do individual timesteps actually buy wall-clock?
//!
//! The Sedov blast is the high-contrast case for block timesteps: the shock
//! shell runs at the Courant limit while the cold ambient gas could take
//! steps orders of magnitude longer. A global dt forces everyone onto the
//! shell's clock; power-of-two dt bins let the ambient bulk freeze through
//! most substeps. This smoke runs the same blast to the same physical time
//! with both schemes at N = 4000 and gates on
//!
//! ```text
//! speedup = wall(global dt) / wall(dt bins) >= 1.5
//! ```
//!
//! The gate is ENFORCED when the host has >= 4 cores (below that, background
//! load on a starved runner drowns the signal in timer noise) and
//! reported-but-skipped otherwise. The physics checks are ALWAYS enforced:
//! the binned run's own energy drift from t = 0 must stay within 5
//! percentage points of the global scheme's (both integrators carry O(dt)
//! drift on a blast; bins must not add materially to it), and its shock
//! front must sit inside the same Sedov similarity-law acceptance band
//! `validate()` uses.
//!
//! Environment knobs (the CI smoke uses the defaults): `SPHSIM_BINS_SCENARIO`
//! (default `Sedov`; the shock-front check only applies to Sedov),
//! `SPHSIM_BINS_N` (default 4000), `SPHSIM_BINS_STEPS` (global-dt step
//! budget, default 40), `SPHSIM_BINS` (bin count, default 4).

use sphsim::init::noh::{noh_preshock_density, NOH_RHO0};
use sphsim::init::sedov::{sedov_shock_radius, SEDOV_E0, SEDOV_RHO0};
use sphsim::{scenario, ParticleSet, Simulation};
use std::time::Instant;

const SEED: u64 = 7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Density-weighted radius of the outward-streaming shell — the same robust
/// shock-front locator the Sedov `validate()` check uses.
fn shock_front_radius(p: &ParticleSet) -> f64 {
    let mut weighted_r = 0.0;
    let mut weight = 0.0;
    for i in 0..p.len() {
        let dx = p.x[i] - 0.5;
        let dy = p.y[i] - 0.5;
        let dz = p.z[i] - 0.5;
        let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-9);
        let v_r = (p.vx[i] * dx + p.vy[i] * dy + p.vz[i] * dz) / r;
        let w = (p.m[i] * v_r).max(0.0);
        weighted_r += w * r;
        weight += w;
    }
    if weight > 0.0 {
        weighted_r / weight
    } else {
        f64::NAN
    }
}

fn conserved_energy(p: &ParticleSet) -> f64 {
    p.kinetic_energy() + p.internal_energy()
}

fn main() {
    let scenario_name = std::env::var("SPHSIM_BINS_SCENARIO").unwrap_or_else(|_| "Sedov".to_string());
    let n_target = env_usize("SPHSIM_BINS_N", 4000);
    let global_steps = env_usize("SPHSIM_BINS_STEPS", 40) as u64;
    let n_bins = env_usize("SPHSIM_BINS", 4);
    let sc = scenario::get(&scenario_name).unwrap_or_else(|| panic!("scenario `{scenario_name}` is registered"));
    println!("timestep_bins_smoke: {scenario_name} | {n_target} particles | {n_bins} dt bins\n");

    // Reference: the global-dt scheme for a fixed step budget. Its end time
    // is the matched physical horizon for the binned run.
    let mut global = Simulation::from_scenario(sc.clone(), n_target, SEED);
    let e_start = conserved_energy(global.particles());
    let started = Instant::now();
    global.run(global_steps);
    let wall_global = started.elapsed().as_secs_f64();
    let t_end = global.time();
    println!(
        "  global dt : {global_steps} steps to t = {t_end:.5} in {:.1} ms",
        wall_global * 1e3
    );

    // Binned: same blast, same horizon, hierarchical substeps.
    let mut binned = Simulation::from_scenario(sc, n_target, SEED).with_timestep_bins(n_bins);
    let started = Instant::now();
    let mut substeps = 0u64;
    while binned.time() < t_end {
        binned.step();
        substeps += 1;
        assert!(substeps < 100_000, "binned run failed to reach t = {t_end}");
    }
    let wall_binned = started.elapsed().as_secs_f64();
    println!(
        "  dt bins   : {substeps} substeps to t = {:.5} in {:.1} ms",
        binned.time(),
        wall_binned * 1e3
    );

    let speedup = wall_global / wall_binned.max(1e-12);
    println!("\n  wall-clock speedup: {speedup:.2}x");

    // Physics gates — always enforced, no accuracy-for-speed trades. Both
    // integrators carry O(dt) energy error on a blast at the Courant limit
    // (~10% over 50 global steps, see tests/conservation.rs), so the fair
    // accuracy measure is each scheme's drift from its own energy budget:
    // bins must not drift materially beyond the global scheme.
    let drift = |e_end: f64| (e_end - e_start).abs() / e_start.abs().max(1e-12);
    let (drift_global, drift_binned) = (
        drift(conserved_energy(global.particles())),
        drift(conserved_energy(binned.particles())),
    );
    println!(
        "  energy drift from t = 0: global {:.2}%, binned {:.2}%",
        drift_global * 100.0,
        drift_binned * 100.0
    );
    if drift_binned > drift_global + 0.05 {
        eprintln!(
            "\nphysics gate FAILED: binned energy drift {:.2}% exceeds the global scheme's \
             {:.2}% by more than 5 percentage points — bins are trading accuracy for speed",
            drift_binned * 100.0,
            drift_global * 100.0
        );
        std::process::exit(1);
    }
    if scenario_name == "Sedov" {
        let front = shock_front_radius(binned.particles());
        let expected = sedov_shock_radius(SEDOV_E0, SEDOV_RHO0, binned.time());
        println!(
            "  shock front: r = {front:.4} (similarity law {expected:.4}, accepted [{:.4}, {:.4}])",
            0.6 * expected,
            1.4 * expected
        );
        if !(front.is_finite() && (0.6 * expected..=1.4 * expected).contains(&front)) {
            eprintln!(
                "\nphysics gate FAILED: binned shock front r = {front:.4} outside the Sedov \
                 similarity-law acceptance band"
            );
            std::process::exit(1);
        }
    } else if scenario_name == "Noh" {
        // Same upstream check the scenario's `validate()` uses, applied to the
        // binned state: ahead of the accretion shock (r = t/3) the flow is
        // exactly solvable, ρ(r, t) = ρ₀ (1 + t/r)².
        let p = binned.particles();
        let t = binned.time();
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        for i in 0..p.len() {
            let r = (p.x[i].powi(2) + p.y[i].powi(2) + p.z[i].powi(2)).sqrt();
            if (0.2..0.3).contains(&r) && p.rho[i] > 0.0 {
                ratio_sum += p.rho[i] / noh_preshock_density(NOH_RHO0, t, r);
                count += 1;
            }
        }
        let ratio = if count > 0 { ratio_sum / count as f64 } else { f64::NAN };
        println!("  pre-shock density ratio vs exact upstream profile: {ratio:.3} (accepted [0.75, 1.25], {count} particles in the shell)");
        if !(ratio.is_finite() && (0.75..=1.25).contains(&ratio)) {
            eprintln!(
                "\nphysics gate FAILED: binned pre-shock density ratio {ratio:.3} outside the \
                 Noh upstream-profile acceptance band"
            );
            std::process::exit(1);
        }
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        println!(
            "\nnote: host has {cores} core(s); the >= 1.5x speedup gate is calibrated for \
             >= 4 cores and is SKIPPED here (reported, not enforced)."
        );
        return;
    }
    if speedup < 1.5 {
        eprintln!(
            "\nspeedup gate FAILED: dt bins reached t = {t_end:.5} only {speedup:.2}x faster \
             than the global dt scheme; the high-contrast Sedov gate requires >= 1.5x"
        );
        std::process::exit(1);
    }
    println!("\n  gate PASSED: dt bins >= 1.5x over global dt at equal accuracy.");
}
