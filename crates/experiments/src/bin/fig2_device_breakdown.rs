//! Regenerate Figure 2: device breakdown of consumed energy for the Subsonic
//! Turbulence and Evrard Collapse runs on LUMI-G and the CSCS A100 system.

use experiments::{fig2_breakdowns, fig2_table, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let breakdowns = fig2_breakdowns(scale);
    let table = fig2_table(&breakdowns);
    println!("{}", table.to_text());
    let path = write_csv(&table, "fig2_device_breakdown.csv").expect("write fig2 CSV");
    println!("CSV written to {}", path.display());
    println!(
        "\nPaper reference: GPU ≈ 74.3 % (LUMI-G) / 76.4 % (CSCS-A100); totals 24.4 / 15.2 / 12.5 / 10.7 MJ at full scale."
    );
}
