//! telemetry_smoke — the observability gate run by CI.
//!
//! Drives two instrumented runs into **one** shared telemetry sink:
//!
//! 1. a 3-step single-rank Sedov simulation (stage spans + per-step health
//!    gauges from the CPU propagator), and
//! 2. a 2-step 4-rank Kelvin–Helmholtz distributed run (rank-tagged spans,
//!    global health gauges from rank 0, per-rank comm totals),
//!
//! then re-reads the exported Chrome trace from disk and validates it:
//!
//! * the document parses and is structurally a Chrome trace;
//! * every pipeline stage label of both scenarios appears as a span;
//! * all four ranks appear, and the merged sequence numbers are strictly
//!   monotonic (one total order across ranks);
//! * every step published the health gauges;
//! * the JSONL sibling stream round-trips line by line.
//!
//! Honours `--trace <path>` / `SPHSIM_TRACE`; defaults to
//! `experiments_output/telemetry_smoke.trace.json`. Exits non-zero on any
//! failure, printing each one.

use sphsim::distributed::run_distributed_traced;
use sphsim::{scenario, Simulation};
use std::sync::Arc;

fn main() {
    if experiments::apply_trace_flag().is_none()
        && std::env::var("SPHSIM_TRACE").ok().filter(|v| !v.is_empty()).is_none()
    {
        std::env::set_var(
            "SPHSIM_TRACE",
            experiments::output_dir().join("telemetry_smoke.trace.json"),
        );
    }
    let trace_path = std::path::PathBuf::from(std::env::var("SPHSIM_TRACE").unwrap());
    // The JSONL exporter appends across processes by design; this binary
    // validates exact line counts, so it must start from fresh artefacts.
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(format!("{}.jsonl", trace_path.display()));
    let sink = telemetry::from_env().expect("SPHSIM_TRACE is set above");

    let sedov = scenario::get("Sedov").expect("built-in scenario");
    let kh = scenario::get("KH").expect("built-in scenario");

    println!(
        "telemetry_smoke: 3-step Sedov (1 rank) + 2-step KH (4 ranks) -> {}",
        trace_path.display()
    );
    let mut sim = Simulation::from_scenario(sedov.clone(), 500, 7);
    assert!(
        sim.telemetry().is_some(),
        "SPHSIM_TRACE must attach the process-wide sink"
    );
    sim.run(3);
    run_distributed_traced(kh.clone(), 4, 600, 7, 2, Arc::clone(&sink));
    sink.flush();

    let mut failures: Vec<String> = Vec::new();

    // Re-read the exported trace from disk — the validation must hold on the
    // artefact a human would open in ui.perfetto.dev, not on in-memory state.
    let doc =
        std::fs::read_to_string(&trace_path).unwrap_or_else(|e| panic!("cannot read {}: {e}", trace_path.display()));
    match telemetry::trace::validate_chrome_trace(&doc) {
        Err(e) => failures.push(format!("Chrome trace invalid: {e}")),
        Ok(digest) => {
            for stage in sedov.pipeline().iter().chain(kh.pipeline().iter()) {
                if !digest.span_names.iter().any(|n| n == stage.label()) {
                    failures.push(format!("missing stage span: {}", stage.label()));
                }
            }
            if !digest.span_names.iter().any(|n| n == "Step") {
                failures.push("missing Step span".to_string());
            }
            for rank in 0..4u32 {
                if !digest.ranks.contains(&rank) {
                    failures.push(format!("missing rank {rank} in the merged trace"));
                }
            }
            if !digest.seqs_strictly_monotonic() {
                failures.push("merged sequence numbers are not strictly monotonic".to_string());
            }
            println!(
                "trace ok: {} events, {} span names, ranks {:?}",
                digest.events,
                digest.span_names.len(),
                digest.ranks
            );
        }
    }

    // Health gauges: once per step of each run (3 Sedov + 2 KH).
    let events = sink.events_snapshot();
    for gauge in [
        "health.total_energy",
        "health.energy_drift",
        "health.mass_drift",
        "health.momentum_drift",
        "health.dt",
    ] {
        let samples = events.iter().filter(|e| e.name == gauge).count();
        if samples != 5 {
            failures.push(format!("gauge {gauge}: {samples} samples, expected 5 (one per step)"));
        }
    }

    // The JSONL sibling stream round-trips line by line.
    let jsonl_path = format!("{}.jsonl", trace_path.display());
    match std::fs::read_to_string(&jsonl_path) {
        Err(e) => failures.push(format!("cannot read {jsonl_path}: {e}")),
        Ok(stream) => {
            let lines: Vec<&str> = stream.lines().collect();
            if lines.len() != events.len() {
                failures.push(format!(
                    "JSONL stream has {} lines for {} recorded events",
                    lines.len(),
                    events.len()
                ));
            }
            for (i, line) in lines.iter().enumerate() {
                if telemetry::Event::from_jsonl(line).is_none() {
                    failures.push(format!("JSONL line {i} does not round-trip: {line}"));
                    break;
                }
            }
        }
    }

    experiments::print_telemetry_summary("telemetry_smoke");

    if failures.is_empty() {
        println!(
            "telemetry smoke passed: trace at {} (open in ui.perfetto.dev)",
            trace_path.display()
        );
    } else {
        eprintln!("{} telemetry smoke check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
