//! Regenerate Figure 5: normalised energy-delay product of the most
//! time-consuming SPH functions under GPU frequency down-scaling (miniHPC,
//! 450³ particles per GPU).

use experiments::{fig5_sweep, fig5_table, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let sweep = fig5_sweep(scale.timesteps());
    let table = fig5_table(&sweep);
    println!("{}", table.to_text());
    let path = write_csv(&table, "fig5_function_edp.csv").expect("write fig5 CSV");
    println!("CSV written to {}", path.display());
    println!("\nPaper reference: DomainDecompAndSync improves by ~27 %, other memory-bound functions by up to ~20 %, while MomentumEnergy and IADVelocityDivCurl do not benefit.");
}
