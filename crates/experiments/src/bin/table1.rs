//! Regenerate Table 1: simulation and computing-system parameters.

use experiments::{table1, write_csv};

fn main() {
    let (sim, sys) = table1();
    println!("{}", sim.to_text());
    println!("{}", sys.to_text());
    let sim_path = write_csv(&sim, "table1_simulations.csv").expect("write table1 simulations CSV");
    let sys_path = write_csv(&sys, "table1_systems.csv").expect("write table1 systems CSV");
    println!("CSV written to {} and {}", sim_path.display(), sys_path.display());
}
