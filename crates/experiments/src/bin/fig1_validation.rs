//! Regenerate Figure 1: PMT-measured vs Slurm-reported energy for Subsonic
//! Turbulence on 8–48 GPU cards, on LUMI-G and the CSCS A100 system.

use experiments::{fig1_series, fig1_table, write_csv, Scale};
use hwmodel::arch::SystemKind;

fn main() {
    let scale = Scale::from_env();
    let cards: Vec<usize> = match scale {
        Scale::Reduced => vec![8, 16, 24, 32, 40, 48],
        Scale::Full => vec![8, 16, 24, 32, 40, 48],
    };
    for system in [SystemKind::LumiG, SystemKind::CscsA100] {
        let series = fig1_series(system, &cards, scale.timesteps());
        let table = fig1_table(system, &series);
        println!("{}", table.to_text());
        let filename = format!("fig1_{}.csv", system.name().to_lowercase().replace('-', "_"));
        let path = write_csv(&table, &filename).expect("write fig1 CSV");
        println!("CSV written to {}\n", path.display());
    }
}
