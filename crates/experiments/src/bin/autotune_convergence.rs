//! autotune_convergence — validate the online DVFS governor against the
//! paper's offline frequency sweep.
//!
//! Two experiments, each run for both Table-1 test cases (Subsonic Turbulence
//! and Evrard Collapse) on the miniHPC A100 system:
//!
//! 1. **Whole-loop convergence** — the golden-section and hill-climb
//!    strategies tune the main-loop EDP online (one reduced campaign per
//!    trial frequency) and must land within one `f_step_hz` of the
//!    exhaustive sweep's min-EDP frequency while spending fewer meter polls.
//! 2. **Per-stage governance** — a [`Governor`] rides one governed campaign
//!    and converges each pipeline stage to its own operating point, showing
//!    the compute-bound stages settle at higher clocks than the
//!    memory/communication-bound ones.
//!
//! The process exits non-zero if any convergence criterion fails, so the
//! binary doubles as a regression check.

use autotune::{tune, Edp, ExhaustiveSweep, GoldenSection, HillClimb, Objective, SearchStrategy};
use energy_analysis::EdpPoint;
use experiments::{governor_convergence_failures, reduced_minihpc_config, run_governed_edp_campaign};
use hwmodel::arch::SystemKind;
use hwmodel::DvfsModel;
use sphsim::{run_campaign, ScenarioRef};

fn a100_model() -> DvfsModel {
    SystemKind::MiniHpc
        .node_builder()
        .build()
        .gpu(0)
        .expect("miniHPC has GPUs")
        .spec()
        .dvfs
        .clone()
}

/// One whole-loop evaluation: run a reduced campaign pinned at `freq` and
/// score its main-loop EDP. Returns the score and the meter polls spent.
fn evaluate(scenario: &ScenarioRef, freq: f64) -> (f64, u64) {
    let mut config = reduced_minihpc_config(scenario.clone(), 4);
    config.gpu_frequency_hz = Some(freq);
    let result = run_campaign(&config);
    let point = EdpPoint {
        frequency_hz: freq,
        energy_j: result.true_main_loop_energy_j,
        time_s: result.main_loop_duration_s(),
    };
    (Edp.score_point(&point), result.total_meter_polls)
}

struct StrategyOutcome {
    name: &'static str,
    best_hz: f64,
    evaluations: usize,
    meter_polls: u64,
}

fn drive(name: &'static str, strategy: &mut dyn SearchStrategy, scenario: &ScenarioRef) -> StrategyOutcome {
    let mut polls = 0;
    let result = tune(
        strategy,
        |f| {
            let (score, p) = evaluate(scenario, f);
            polls += p;
            score
        },
        500,
    )
    .expect("tuning produced no result");
    StrategyOutcome {
        name,
        best_hz: result.best_frequency_hz,
        evaluations: result.evaluations,
        meter_polls: polls,
    }
}

/// Experiment 1: whole-loop online tuning vs the offline sweep.
fn whole_loop_convergence(scenario: &ScenarioRef, failures: &mut Vec<String>) {
    let model = a100_model();
    println!("== {} — whole-loop EDP tuning (miniHPC, A100 grid)", scenario.name());

    let mut sweep = ExhaustiveSweep::new(&model);
    let offline = drive("exhaustive", &mut sweep, scenario);
    let mut outcomes = vec![offline];
    let mut gs = GoldenSection::new(&model);
    outcomes.push(drive("golden-section", &mut gs, scenario));
    let mut hc = HillClimb::new(&model);
    outcomes.push(drive("hill-climb", &mut hc, scenario));

    println!(
        "{:>15} {:>12} {:>13} {:>12}",
        "strategy", "best [MHz]", "evaluations", "meter polls"
    );
    for o in &outcomes {
        println!(
            "{:>15} {:>12.0} {:>13} {:>12}",
            o.name,
            o.best_hz / 1.0e6,
            o.evaluations,
            o.meter_polls
        );
    }

    let offline = &outcomes[0];
    for online in &outcomes[1..] {
        if (online.best_hz - offline.best_hz).abs() > model.f_step_hz + 1.0 {
            failures.push(format!(
                "{}: {} found {:.0} MHz, exhaustive sweep found {:.0} MHz (> one step apart)",
                scenario.name(),
                online.name,
                online.best_hz / 1.0e6,
                offline.best_hz / 1.0e6
            ));
        }
        if online.meter_polls >= offline.meter_polls {
            failures.push(format!(
                "{}: {} spent {} meter polls, not fewer than the sweep's {}",
                scenario.name(),
                online.name,
                online.meter_polls,
                offline.meter_polls
            ));
        }
    }
    println!();
}

/// Experiment 2: per-stage governor inside one governed campaign.
fn per_stage_governance(scenario: &ScenarioRef, failures: &mut Vec<String>) {
    // 80 timesteps: enough observations for every stage to converge.
    let config = reduced_minihpc_config(scenario.clone(), 80);
    let (governor, result) = run_governed_edp_campaign(&config);

    println!(
        "== {} — per-stage hill-climb governor ({} timesteps, {} polls)",
        scenario.name(),
        config.timesteps,
        result.total_meter_polls
    );
    println!(
        "{:>22} {:>12} {:>13} {:>10}",
        "stage", "best [MHz]", "observations", "converged"
    );
    let report = governor.report();
    for stage in &report {
        println!(
            "{:>22} {:>12.0} {:>13} {:>10}",
            stage.label,
            stage.best_frequency_hz.unwrap_or(0.0) / 1.0e6,
            stage.observations,
            stage.converged
        );
    }

    failures.extend(governor_convergence_failures(scenario.as_ref(), &governor));

    // The paper's Figure 5 observation, reproduced online: the dominant
    // compute stage tolerates less down-scaling than the memory-bound
    // domain-sync stage.
    let best = |label: &str| {
        report
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| s.best_frequency_hz)
            .unwrap_or(0.0)
    };
    let f_momentum = best("MomentumEnergy");
    let f_sync = best("DomainDecompAndSync");
    if f_momentum < f_sync {
        failures.push(format!(
            "{}: MomentumEnergy ({:.0} MHz) should not tune below DomainDecompAndSync ({:.0} MHz)",
            scenario.name(),
            f_momentum / 1.0e6,
            f_sync / 1.0e6
        ));
    }
    println!();
}

fn main() {
    let mut failures = Vec::new();
    for scenario in experiments::table1_scenarios() {
        whole_loop_convergence(&scenario, &mut failures);
        per_stage_governance(&scenario, &mut failures);
    }
    if failures.is_empty() {
        println!("All convergence checks passed.");
    } else {
        eprintln!("{} convergence check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
