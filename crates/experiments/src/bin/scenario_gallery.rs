//! scenario_gallery — sweep every registered scenario through the full
//! methodology and emit a per-scenario EDP/frequency table.
//!
//! For each scenario in the [`sphsim::ScenarioRegistry`]:
//!
//! 1. **Analytic validation** — the scenario's own CPU-propagator run is
//!    checked against its closed-form observable (Sedov shock-front radius,
//!    Noh upstream density profile, KH linear growth rate, turbulence Mach
//!    number, Evrard energy conservation). A check outside its acceptance
//!    band fails the process.
//! 2. **Governed campaign** — a reduced paper-scale campaign runs under the
//!    `autotune` per-stage EDP governor; every pipeline stage must converge
//!    to an on-grid min-EDP frequency (the hill-climb's built-in one-grid-step
//!    convergence criterion). The per-stage frequencies and the governed vs
//!    nominal whole-loop EDP are tabulated and written to
//!    `experiments_output/`.
//!
//! The process exits non-zero on any validation or convergence failure, so
//! the binary doubles as the scenario-regression gate in CI.

use energy_analysis::gallery::{
    scenario_edp_table, stage_frequency_table, validation_table, ScenarioEdpRow, ScenarioValidationRow,
    StageFrequencyRow,
};
use experiments::{governor_convergence_failures, reduced_minihpc_config, run_governed_edp_campaign, write_csv};
use sphsim::{run_campaign, scenario, ScenarioRef};

struct GalleryOutcome {
    validation: ScenarioValidationRow,
    frequencies: Vec<StageFrequencyRow>,
    edp: ScenarioEdpRow,
}

fn run_scenario(scenario: &ScenarioRef, failures: &mut Vec<String>) -> GalleryOutcome {
    // 1. Analytic validation on the CPU propagator.
    let check = scenario.validate();
    println!("  {check}");
    if !check.passed() {
        failures.push(format!(
            "{}: analytic validation failed: {check}",
            scenario.short_name()
        ));
    }
    let validation = ScenarioValidationRow {
        scenario: check.scenario.clone(),
        observable: check.observable.to_string(),
        measured: check.measured,
        expected: check.expected,
        acceptance: check.acceptance,
        passed: check.passed(),
    };

    // 2. Nominal baseline, then the governed campaign.
    // 80 timesteps: enough observations for every stage to converge.
    let config = reduced_minihpc_config(scenario.clone(), 80);
    let baseline = run_campaign(&config);
    let (governor, governed) = run_governed_edp_campaign(&config);

    failures.extend(governor_convergence_failures(scenario.as_ref(), &governor));
    let frequencies: Vec<StageFrequencyRow> = governor
        .report()
        .into_iter()
        .map(|stage| StageFrequencyRow {
            scenario: scenario.short_name().to_string(),
            stage: stage.label,
            best_frequency_hz: stage.best_frequency_hz.unwrap_or(0.0),
            observations: stage.observations,
            converged: stage.converged,
        })
        .collect();

    let edp = ScenarioEdpRow {
        scenario: scenario.short_name().to_string(),
        energy_j: governed.true_main_loop_energy_j,
        time_s: governed.main_loop_duration_s(),
        baseline_energy_j: baseline.true_main_loop_energy_j,
        baseline_time_s: baseline.main_loop_duration_s(),
    };

    GalleryOutcome {
        validation,
        frequencies,
        edp,
    }
}

fn main() {
    // `--trace <path>`: every campaign of the gallery shares one telemetry
    // sink; its summary is printed after the gallery tables.
    let tracing = experiments::apply_trace_flag();
    let scenarios = scenario::all();
    println!(
        "Scenario gallery: {} registered scenarios ({})\n",
        scenarios.len(),
        scenario::names().join(", ")
    );

    let mut failures = Vec::new();
    let mut validations = Vec::new();
    let mut frequencies = Vec::new();
    let mut edps = Vec::new();
    for scenario in &scenarios {
        println!("== {} ({})", scenario.name(), scenario.short_name());
        let outcome = run_scenario(scenario, &mut failures);
        validations.push(outcome.validation);
        frequencies.extend(outcome.frequencies);
        edps.push(outcome.edp);
        println!();
    }

    let validation = validation_table(&validations);
    let frequency = stage_frequency_table(&frequencies);
    let edp = scenario_edp_table(&edps);
    println!("{}", validation.to_text());
    println!("{}", frequency.to_text());
    println!("{}", edp.to_text());
    write_csv(&validation, "scenario_gallery_validation.csv").unwrap();
    write_csv(&frequency, "scenario_gallery_frequencies.csv").unwrap();
    write_csv(&edp, "scenario_gallery_edp.csv").unwrap();

    // The per-stage optima must actually differ across scenarios somewhere —
    // otherwise the per-scenario cost model degenerated to a single workload
    // and the gallery is not exercising anything the Table-1 pair didn't.
    let distinct: std::collections::BTreeSet<String> = frequencies
        .iter()
        .filter(|r| r.converged)
        .map(|r| format!("{}:{:.0}", r.stage, r.best_frequency_hz / 1.0e6))
        .collect();
    let stages: std::collections::BTreeSet<&str> = frequencies.iter().map(|r| r.stage.as_str()).collect();
    if distinct.len() <= stages.len() {
        failures.push(
            "per-stage min-EDP frequencies are identical across all scenarios — scenario cost scaling is inert"
                .to_string(),
        );
    }

    experiments::print_telemetry_summary("scenario_gallery telemetry");
    if let Some(path) = &tracing {
        println!(
            "telemetry: Chrome trace at {} (open in ui.perfetto.dev)\n",
            path.display()
        );
    }

    if failures.is_empty() {
        println!("All {} scenarios validated and converged.", scenarios.len());
    } else {
        eprintln!("{} scenario-gallery check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
