//! Run every experiment (Table 1 and Figures 1–5) and write all CSV series to
//! `experiments_output/`.

use experiments::{
    fig1_series, fig1_table, fig2_breakdowns, fig2_table, fig3_breakdowns, fig3_table, fig4_sweep, fig4_table,
    fig5_sweep, fig5_table, table1, write_csv, Scale,
};
use hwmodel::arch::SystemKind;

fn main() {
    // `--trace <path>` (or SPHSIM_TRACE): one shared sink across every
    // experiment; the summary prints at the end through the shared emitter.
    let tracing = experiments::apply_trace_flag();
    let scale = Scale::from_env();
    println!("Running all experiments at {scale:?} scale (set EXPERIMENTS_FULL_SCALE=1 for the paper's node counts)\n");

    let (sim, sys) = table1();
    println!("{}", sim.to_text());
    println!("{}", sys.to_text());
    write_csv(&sim, "table1_simulations.csv").unwrap();
    write_csv(&sys, "table1_systems.csv").unwrap();

    let cards = [8usize, 16, 24, 32, 40, 48];
    for system in [SystemKind::LumiG, SystemKind::CscsA100] {
        let series = fig1_series(system, &cards, scale.timesteps());
        let table = fig1_table(system, &series);
        println!("{}", table.to_text());
        let filename = format!("fig1_{}.csv", system.name().to_lowercase().replace('-', "_"));
        write_csv(&table, &filename).unwrap();
    }

    let fig2 = fig2_breakdowns(scale);
    let table = fig2_table(&fig2);
    println!("{}", table.to_text());
    write_csv(&table, "fig2_device_breakdown.csv").unwrap();

    for (label, fb) in fig3_breakdowns(scale) {
        let table = fig3_table(&label, &fb);
        println!("{}", table.to_text());
        write_csv(&table, &format!("fig3_{}.csv", label.to_lowercase().replace('-', "_"))).unwrap();
    }

    let sweep = fig4_sweep(scale.timesteps());
    let table = fig4_table(&sweep);
    println!("{}", table.to_text());
    write_csv(&table, "fig4_edp_frequency.csv").unwrap();

    let sweep = fig5_sweep(scale.timesteps());
    let table = fig5_table(&sweep);
    println!("{}", table.to_text());
    write_csv(&table, "fig5_function_edp.csv").unwrap();

    experiments::print_telemetry_summary("run_all telemetry");
    if let Some(path) = &tracing {
        println!(
            "telemetry: Chrome trace at {} (open in ui.perfetto.dev)\n",
            path.display()
        );
    }

    println!(
        "All experiment series written to {}/",
        experiments::output_dir().display()
    );
}
