//! weak_scaling — drive the *genuinely distributed* propagator across real
//! ranks and report per-rank per-stage energy tables à la the paper's §2.
//!
//! For every registered scenario the binary
//!
//! 1. **gates correctness**: a multi-rank run must match the single-rank
//!    propagator per particle (through the global-id maps) to 1e-10 over a
//!    3-step window — the invariant the domain decomposition, halo exchange
//!    and global Courant reduction all have to preserve;
//! 2. **sweeps R ∈ {1, 2, 4, 8}** (weak scaling: constant particles per
//!    rank), each rank on its own simulated GPU die with its own per-stage
//!    EDP hill-climb governor, and prints the gathered per-rank per-stage
//!    energy table plus the aggregate `FindNeighbors + MomentumEnergy`
//!    throughput in particles/second.
//!
//! The sweep additionally gates R=4 throughput ≥ 2× the R=1 throughput —
//! **enforced** whenever the host has ≥ 4 cores (in smoke mode too: CI
//! runners with 4+ cores run the gate for real), and skipped with a printed
//! notice otherwise, since the rank threads *are* the parallelism and a
//! smaller machine cannot physically express the speedup. Set
//! `WEAK_SCALING_SMOKE=1` for the CI smoke variant: small N, 3 steps,
//! R ∈ {1, 2} (+4 when the gate is live).
//!
//! Exits non-zero if any gate fails.

use autotune::{Governor, GovernorConfig};
use cluster::TransportKind;
use energy_analysis::{per_rank_stage_table, RankStages};
use hwmodel::arch::SystemKind;
use pmt::aggregate_by_label;
use sphsim::distributed::{run_distributed_campaign, run_distributed_with_transport, DistributedCampaignConfig};
use sphsim::{scenario, ScenarioRef, Simulation};
use std::sync::Arc;

/// Absolute-or-relative agreement to 1e-10.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-10 * a.abs().max(b.abs()).max(1.0)
}

/// Gate: an `n_ranks` distributed run of `scenario` must reproduce the
/// single-rank propagator per particle after `steps` steps.
fn agreement_failures(
    scenario: &ScenarioRef,
    n_ranks: usize,
    n_total: usize,
    steps: u64,
    transport: TransportKind,
) -> Vec<String> {
    let mut failures = Vec::new();
    let name = scenario.short_name();
    let mut reference = Simulation::from_scenario(scenario.clone(), n_total, 7).with_reorder_interval(0);
    reference.run(steps);
    let rp = reference.particles();
    let shards = run_distributed_with_transport(scenario.clone(), n_ranks, n_total, 7, steps, transport);
    let mut covered = 0usize;
    for shard in &shards {
        for (slot, &id) in shard.ids.iter().enumerate() {
            let id = id as usize;
            let sp = &shard.particles;
            covered += 1;
            for (field, a, b) in [
                ("x", sp.x[slot], rp.x[id]),
                ("vx", sp.vx[slot], rp.vx[id]),
                ("rho", sp.rho[slot], rp.rho[id]),
                ("u", sp.u[slot], rp.u[id]),
                ("du", sp.du[slot], rp.du[id]),
            ] {
                if !close(a, b) {
                    failures.push(format!(
                        "{name}: particle {id} field {field} diverged between 1 and {n_ranks} ranks: {b} vs {a}"
                    ));
                }
            }
        }
    }
    if covered != rp.len() {
        failures.push(format!(
            "{name}: {n_ranks}-rank shards cover {covered} of {} particles",
            rp.len()
        ));
    }
    failures
}

/// One metered sweep point; returns the FindNeighbors + MomentumEnergy
/// throughput in particles/second.
fn sweep_point(scenario: &ScenarioRef, n_ranks: usize, n_per_rank: usize, steps: u64, transport: TransportKind) -> f64 {
    let config = DistributedCampaignConfig {
        system: SystemKind::MiniHpc,
        scenario: scenario.clone(),
        n_ranks,
        n_per_rank,
        steps,
        seed: 7,
        transport,
    };
    let labels = scenario.stage_labels();
    let result = run_distributed_campaign(&config, |ctx, meter| {
        // Each rank governs its own mapped die: per-stage EDP hill-climb over
        // the die's DVFS grid, observing this rank's per-stage records.
        let governor = Arc::new(Governor::new(
            GovernorConfig::edp_hill_climb(labels.clone()),
            Arc::new(ctx.gpu.clone()),
        ));
        meter.add_region_observer(governor);
    });

    // Per-rank per-stage energies through the shared analysis emitter — the
    // same table shape every binary in the workspace prints.
    let rank_stages: Vec<RankStages> = result
        .per_rank
        .iter()
        .map(|r| RankStages {
            rank: r.rank,
            hostname: r.hostname.clone(),
            owned: r.owned,
            ghosts: r.ghosts,
            stages: aggregate_by_label(&r.report.records),
        })
        .collect();
    let title = format!(
        "{} | R = {n_ranks} | {} particles total | {} steps | wall {:.2} s",
        scenario.short_name(),
        result.total_particles(),
        steps,
        result.elapsed_s
    );
    println!("{}", per_rank_stage_table(&title, &rank_stages).to_text());
    let throughput = result.stages_throughput_pps(&["FindNeighbors", "MomentumEnergy"]);
    println!("   FindNeighbors+MomentumEnergy throughput: {throughput:.0} particles/s\n");
    throughput
}

fn main() {
    // The ranks themselves are the parallelism under test: pin every in-rank
    // kernel to one worker thread so R rank-threads never oversubscribe the
    // host. Must happen before the first kernel call (the count is latched
    // once per process).
    std::env::set_var("SPHSIM_THREADS", "1");
    // `--trace <path>`: every rank of every run shares one telemetry sink.
    let tracing = experiments::apply_trace_flag();
    // `--transport shm|socket`: which Comm backend the ranks talk over.
    let transport = {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--transport") {
            Some(i) => {
                let value = args.get(i + 1).map(String::as_str).unwrap_or("");
                TransportKind::parse(value).unwrap_or_else(|| {
                    eprintln!("--transport must be 'shm' or 'socket', got '{value}'");
                    std::process::exit(2);
                })
            }
            None => TransportKind::Shm,
        }
    };
    println!("transport: {}\n", transport.label());

    let smoke = std::env::var("WEAK_SCALING_SMOKE").map(|v| v == "1").unwrap_or(false);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The scaling gate is enforced whenever the host can express it: R rank
    // threads need R cores, so it takes at least 4. Below that the sweep
    // still reports per-rank throughput but skips the gate with a notice.
    let enforce_scaling = cores >= 4;
    let (rank_counts, n_per_rank, steps): (Vec<usize>, usize, u64) = if smoke {
        (if enforce_scaling { vec![1, 2, 4] } else { vec![1, 2] }, 250, 3)
    } else {
        (vec![1, 2, 4, 8], 2000, 8)
    };
    if !enforce_scaling {
        println!(
            "note: host has {cores} core(s); the R=4 >= 2x R=1 throughput gate needs >= 4 \
             cores and is SKIPPED here (throughput reported, not enforced).\n"
        );
    }

    let mut failures = Vec::new();

    println!("== single-vs-multi-rank agreement gate (1e-10, 3 steps)\n");
    for scenario in scenario::all() {
        let gate_ranks = *rank_counts.last().expect("non-empty sweep");
        let gate_failures = agreement_failures(&scenario, gate_ranks, 400, 3, transport);
        println!(
            "   {:<6} {} ranks vs 1: {}",
            scenario.short_name(),
            gate_ranks,
            if gate_failures.is_empty() { "agree" } else { "DIVERGED" }
        );
        failures.extend(gate_failures);
    }
    println!();

    println!("== weak-scaling sweep ({n_per_rank} particles/rank, {steps} steps, per-rank EDP governors)\n");
    for scenario in scenario::all() {
        let mut throughputs = Vec::new();
        for &r in &rank_counts {
            throughputs.push((r, sweep_point(&scenario, r, n_per_rank, steps, transport)));
        }
        println!("   {} throughput by rank count:", scenario.short_name());
        for &(r, t) in &throughputs {
            let speedup = t / throughputs[0].1.max(1e-30);
            println!("     R = {r}: {t:>12.0} particles/s ({speedup:.2}x vs R = 1)");
        }
        println!();
        if enforce_scaling {
            let t1 = throughputs.iter().find(|&&(r, _)| r == 1).map(|&(_, t)| t).unwrap_or(0.0);
            let t4 = throughputs.iter().find(|&&(r, _)| r == 4).map(|&(_, t)| t).unwrap_or(0.0);
            if t4 < 2.0 * t1 {
                failures.push(format!(
                    "{}: R=4 throughput {t4:.0} p/s is below 2x the R=1 throughput {t1:.0} p/s",
                    scenario.short_name()
                ));
            }
        }
    }

    experiments::print_telemetry_summary("weak_scaling telemetry");
    if let Some(path) = &tracing {
        println!(
            "telemetry: Chrome trace at {} (open in ui.perfetto.dev)\n",
            path.display()
        );
    }

    if failures.is_empty() {
        println!("All weak-scaling checks passed.");
    } else {
        eprintln!("{} weak-scaling check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
