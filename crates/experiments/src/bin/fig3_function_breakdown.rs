//! Regenerate Figure 3: per-function energy breakdown of the Subsonic
//! Turbulence and Evrard Collapse runs on both large systems.

use experiments::{fig3_breakdowns, fig3_table, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    for (label, fb) in fig3_breakdowns(scale) {
        let table = fig3_table(&label, &fb);
        println!("{}", table.to_text());
        let filename = format!("fig3_{}.csv", label.to_lowercase().replace('-', "_"));
        let path = write_csv(&table, &filename).expect("write fig3 CSV");
        println!("CSV written to {}\n", path.display());
    }
    println!("Paper reference: MomentumEnergy ≈ 25.29 % of GPU energy on CSCS-A100-Turb vs ≈ 45.8 % on LUMI-Turb.");
}
