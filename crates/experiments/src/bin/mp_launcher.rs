//! mp_launcher — the socket transport across *real OS processes*.
//!
//! Every other harness in the workspace runs its ranks as threads of one
//! process, which shares an address space even over the socket backend. This
//! launcher is the end-to-end proof that nothing in the pipeline secretly
//! relies on that: the parent re-executes itself `R` times, each child joins
//! the world through [`cluster::CommWorld::connect_socket`] over a Unix-domain
//! rendezvous directory, runs the full distributed propagator, and (with
//! `--verify`) rank 0 gathers every shard over the wire and checks it against
//! an in-process single-rank reference to 1e-10 per particle.
//!
//! ```text
//! mp_launcher --ranks 2 --scenario KH --steps 3 --verify
//! ```
//!
//! The parent's exit status is non-zero if any child fails (including a
//! verification mismatch in rank 0). Child processes are selected by the
//! `MP_LAUNCHER_RANK` / `MP_LAUNCHER_WORLD` / `MP_LAUNCHER_SPEC` environment
//! variables the parent sets — there is no child-mode flag to mistype.

use cluster::CommWorld;
use sphsim::distributed::DistributedSimulation;
use sphsim::{scenario, ScenarioRef, Simulation};
use std::process::Command;

/// Absolute-or-relative agreement to 1e-10 — the workspace-wide gate.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-10 * a.abs().max(b.abs()).max(1.0)
}

struct Config {
    ranks: usize,
    scenario: ScenarioRef,
    steps: u64,
    particles: usize,
    seed: u64,
    verify: bool,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_config() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let scenario_name = flag_value(&args, "--scenario").unwrap_or_else(|| "KH".to_string());
    let scenario = scenario::all()
        .into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(&scenario_name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = scenario::all().iter().map(|s| s.short_name()).collect();
            eprintln!("unknown scenario '{scenario_name}'; known: {known:?}");
            std::process::exit(2);
        });
    let parse_or = |flag: &str, default: u64| -> u64 {
        match flag_value(&args, flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} wants an unsigned integer, got '{v}'");
                std::process::exit(2);
            }),
            None => default,
        }
    };
    Config {
        ranks: parse_or("--ranks", 2) as usize,
        scenario,
        steps: parse_or("--steps", 3),
        particles: parse_or("--particles", 400) as usize,
        seed: parse_or("--seed", 7),
        verify: args.iter().any(|a| a == "--verify"),
    }
}

/// Parent: spawn one child process per rank against a fresh rendezvous
/// directory and report their combined status.
fn run_parent(config: &Config) {
    let exe = std::env::current_exe().expect("own executable path");
    let spec = std::env::temp_dir().join(format!("mp-launcher-{}", std::process::id()));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "mp_launcher: {} socket ranks as OS processes | {} | {} particles | {} steps | verify: {}",
        config.ranks,
        config.scenario.short_name(),
        config.particles,
        config.steps,
        config.verify,
    );
    let children: Vec<_> = (0..config.ranks)
        .map(|r| {
            Command::new(&exe)
                .args(&argv)
                .env("MP_LAUNCHER_RANK", r.to_string())
                .env("MP_LAUNCHER_WORLD", config.ranks.to_string())
                .env("MP_LAUNCHER_SPEC", &spec)
                // One kernel thread per rank process: the ranks are the
                // parallelism, and CI runners are small.
                .env("SPHSIM_THREADS", "1")
                .spawn()
                .unwrap_or_else(|e| {
                    eprintln!("spawn child rank {r}: {e}");
                    std::process::exit(1);
                })
        })
        .collect();
    let mut failed = 0usize;
    for (r, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait on child");
        if !status.success() {
            eprintln!("child rank {r} FAILED: {status}");
            failed += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&spec);
    if failed > 0 {
        eprintln!("mp_launcher: {failed} child process(es) failed");
        std::process::exit(1);
    }
    println!("mp_launcher: all {} processes exited cleanly.", config.ranks);
}

/// One gathered shard row per owned particle: global id plus the eight
/// per-particle fields the transport-equivalence gate compares.
type Row = (u32, [f64; 8]);

/// Child: join the world over the rendezvous socket directory, run the
/// distributed propagator, and (verify mode) ship the shard to rank 0 for the
/// per-particle check against the single-rank reference.
fn run_child(config: &Config, rank: usize, world: usize, spec: &str) {
    let comm = CommWorld::connect_socket(spec, rank, world).unwrap_or_else(|e| {
        eprintln!("rank {rank}: socket rendezvous failed: {e:?}");
        std::process::exit(1);
    });
    let mut sim = DistributedSimulation::from_scenario(comm, config.scenario.clone(), config.particles, config.seed);
    sim.run(config.steps);
    let energy = sim.total_energy();
    let overlap = sim.overlap_stats();
    println!(
        "  rank {rank}/{world} (pid {}): owned {} ghosts {} | E_total {energy:.6e} | overlap hidden {:.0}%",
        std::process::id(),
        sim.n_owned(),
        sim.ghost_count(),
        overlap.hidden_fraction() * 100.0,
    );
    if !config.verify {
        return;
    }
    // Owned prefix only: slots past n_owned are this rank's ghost copies.
    let particles = sim.particles();
    let rows: Vec<Row> = sim.ids()[..sim.n_owned()]
        .iter()
        .enumerate()
        .map(|(slot, &id)| {
            (
                id,
                [
                    particles.x[slot],
                    particles.vx[slot],
                    particles.rho[slot],
                    particles.u[slot],
                    particles.p[slot],
                    particles.du[slot],
                    particles.alpha[slot],
                    particles.h[slot],
                ],
            )
        })
        .collect();
    let gathered = sim.comm().gather(rows, 0);
    let Some(shards) = gathered else {
        return; // non-root: the shard is on the wire, rank 0 owns the verdict
    };
    let mut reference =
        Simulation::from_scenario(config.scenario.clone(), config.particles, config.seed).with_reorder_interval(0);
    reference.run(config.steps);
    let rp = reference.particles();
    let mut mismatches = 0usize;
    let mut covered = 0usize;
    for shard in &shards {
        for &(id, fields) in shard {
            let id = id as usize;
            covered += 1;
            let expected = [
                rp.x[id],
                rp.vx[id],
                rp.rho[id],
                rp.u[id],
                rp.p[id],
                rp.du[id],
                rp.alpha[id],
                rp.h[id],
            ];
            const FIELD_NAMES: [&str; 8] = ["x", "vx", "rho", "u", "p", "du", "alpha", "h"];
            for k in 0..FIELD_NAMES.len() {
                if !close(fields[k], expected[k]) {
                    eprintln!(
                        "  VERIFY: particle {id} field {}: {world}-process {} vs reference {}",
                        FIELD_NAMES[k], fields[k], expected[k]
                    );
                    mismatches += 1;
                }
            }
        }
    }
    if covered != rp.len() {
        eprintln!(
            "  VERIFY: {world}-process shards cover {covered} of {} particles",
            rp.len()
        );
        mismatches += 1;
    }
    if mismatches > 0 {
        eprintln!("  VERIFY FAILED: {mismatches} mismatch(es) across OS-process ranks");
        std::process::exit(1);
    }
    println!("  VERIFY: {covered} particles across {world} OS processes match the single-rank reference to 1e-10.");
}

fn main() {
    let config = parse_config();
    match std::env::var("MP_LAUNCHER_RANK") {
        Ok(r) => {
            let rank: usize = r.parse().expect("MP_LAUNCHER_RANK is a rank index");
            let world: usize = std::env::var("MP_LAUNCHER_WORLD")
                .expect("MP_LAUNCHER_WORLD set alongside MP_LAUNCHER_RANK")
                .parse()
                .expect("MP_LAUNCHER_WORLD is a rank count");
            let spec = std::env::var("MP_LAUNCHER_SPEC").expect("MP_LAUNCHER_SPEC set alongside MP_LAUNCHER_RANK");
            run_child(&config, rank, world, &spec);
        }
        Err(_) => run_parent(&config),
    }
}
