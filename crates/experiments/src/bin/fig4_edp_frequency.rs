//! Regenerate Figure 4: the effect of GPU compute-frequency down-scaling on the
//! energy-delay product of the Subsonic Turbulence run, for different particle
//! counts per GPU, on miniHPC.

use experiments::{fig4_sweep, fig4_table, write_csv, Scale};

fn main() {
    let scale = Scale::from_env();
    let sweep = fig4_sweep(scale.timesteps());
    let table = fig4_table(&sweep);
    println!("{}", table.to_text());
    let path = write_csv(&table, "fig4_edp_frequency.csv").expect("write fig4 CSV");
    println!("CSV written to {}", path.display());
    println!("\nPaper reference: EDP decreases as the clock is lowered from 1410 MHz, most strongly for the under-utilised 200^3 case.");
}
