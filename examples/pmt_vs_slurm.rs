//! PMT-vs-Slurm validation (the Figure 1 workflow): run the same job at several
//! GPU-card counts on the simulated CSCS A100 partition and compare the energy
//! measured by the application-level instrumentation with the job-level energy
//! reported by the Slurm accounting plugin.
//!
//! Run with: `cargo run --example pmt_vs_slurm`

use energy_aware_sim::energy_analysis::validation::pmt_node_level_energy;
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{run_campaign, scenario, CampaignConfig, MAIN_LOOP_LABEL};

fn main() {
    println!("PMT (time-stepping loop) vs Slurm (whole job) on CSCS-A100, Subsonic Turbulence, 10 steps\n");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>10}",
        "GPU cards", "nodes", "PMT [kJ]", "Slurm [kJ]", "PMT/Slurm"
    );
    for cards in [4usize, 8, 16, 24] {
        let turb = scenario::get("Turb").expect("built-in scenario");
        let mut config = CampaignConfig::paper_defaults(SystemKind::CscsA100, turb, cards);
        config.timesteps = 10;
        let result = run_campaign(&config);
        let pmt = pmt_node_level_energy(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
        let slurm = result.sacct.consumed_energy_j;
        println!(
            "{:>10} {:>8} {:>14.1} {:>14.1} {:>10.3}",
            cards,
            result.mapping.node_count(),
            pmt / 1.0e3,
            slurm / 1.0e3,
            pmt / slurm
        );
    }
    println!("\nSlurm reports more energy because its window opens at job submission and");
    println!("includes the setup phase, during which the GPUs are idle — the same effect");
    println!("the paper observes when validating PMT against Slurm.");
}
