//! Online per-stage DVFS governance demo: a campaign where the `autotune`
//! governor rides the PMT region boundaries, tuning each pipeline stage to its
//! own min-EDP GPU frequency while the simulation runs.
//!
//! Run with: `cargo run --example autotune`

use energy_aware_sim::autotune::{ClusterActuator, Governor, GovernorConfig};
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{run_campaign, run_campaign_governed, scenario, CampaignConfig};
use std::sync::Arc;

fn main() {
    let case = scenario::get("Turb").expect("built-in scenario");
    let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, case.clone(), 2);
    config.particles_per_rank = 25.0e6;
    config.timesteps = 80;
    config.setup_seconds = 10.0;
    config.teardown_seconds = 2.0;

    println!(
        "Governed campaign: {} on miniHPC, {} ranks, {} timesteps",
        case.name(),
        config.n_ranks,
        config.timesteps
    );
    println!("Objective: per-stage EDP, hill-climb search over the A100 DVFS grid\n");

    // Baseline: the same campaign pinned at the nominal frequency.
    let baseline = run_campaign(&config);

    let mut governor_slot: Option<Arc<Governor>> = None;
    let governed = run_campaign_governed(&config, |cluster| {
        let actuator = Arc::new(ClusterActuator::new(cluster.clone()));
        let governor = Arc::new(Governor::new(
            GovernorConfig::edp_hill_climb(case.stage_labels()),
            actuator,
        ));
        governor_slot = Some(Arc::clone(&governor));
        vec![governor]
    });
    let governor = governor_slot.expect("wire closure ran");

    println!(
        "{:>22} {:>12} {:>13} {:>10}",
        "stage", "best [MHz]", "observations", "converged"
    );
    for stage in governor.report() {
        println!(
            "{:>22} {:>12.0} {:>13} {:>10}",
            stage.label,
            stage.best_frequency_hz.unwrap_or(0.0) / 1.0e6,
            stage.observations,
            stage.converged
        );
    }

    let e0 = baseline.true_main_loop_energy_j;
    let t0 = baseline.main_loop_duration_s();
    let e1 = governed.true_main_loop_energy_j;
    let t1 = governed.main_loop_duration_s();
    println!(
        "\n{:>24} {:>12} {:>10} {:>14}",
        "run", "energy [kJ]", "time [s]", "EDP [kJ*s]"
    );
    println!(
        "{:>24} {:>12.1} {:>10.1} {:>14.1}",
        "nominal 1410 MHz",
        e0 / 1.0e3,
        t0,
        e0 * t0 / 1.0e3
    );
    println!(
        "{:>24} {:>12.1} {:>10.1} {:>14.1}",
        "governed (per stage)",
        e1 / 1.0e3,
        t1,
        e1 * t1 / 1.0e3
    );
    println!(
        "\nPer-stage EDP governance cut energy to {:.0}% of nominal at {:.2}x the runtime \
         (whole-loop EDP: {:.0}% of nominal, including the search transient).",
        100.0 * e1 / e0,
        t1 / t0,
        100.0 * (e1 * t1) / (e0 * t0)
    );
    println!(
        "Each stage minimises its own E*T, so memory-bound stages tune very low and trade \
         runtime for energy; for the whole-loop Figure-4 optimum see the \
         autotune_convergence experiment."
    );
}
