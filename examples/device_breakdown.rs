//! Device-level energy breakdown of a paper-scale campaign (the Figure 2
//! workflow): run the Subsonic Turbulence workload on a simulated LUMI-G
//! partition, measure every rank with PMT, and report which device consumed
//! how much energy.
//!
//! Run with: `cargo run --example device_breakdown`

use energy_aware_sim::energy_analysis::device_breakdown::device_breakdown;
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::pmt::units::format_energy;
use energy_aware_sim::sphsim::{run_campaign, scenario, CampaignConfig, MAIN_LOOP_LABEL};

fn main() {
    // 16 ranks = 2 LUMI-G nodes (8 GCDs each), 10 timesteps for a quick demo.
    let turb = scenario::get("Turb").expect("built-in scenario");
    let mut config = CampaignConfig::paper_defaults(SystemKind::LumiG, turb, 16);
    config.timesteps = 10;
    println!(
        "Running {} on {} with {} ranks ({} particles/rank, {} steps)...\n",
        config.scenario.name(),
        config.system.name(),
        config.n_ranks,
        config.particles_per_rank,
        config.timesteps
    );
    let result = run_campaign(&config);

    let breakdown = device_breakdown(&result.rank_reports, &result.mapping, MAIN_LOOP_LABEL);
    let p = breakdown.percentages();
    println!("Device breakdown of the time-stepping loop:");
    println!("  GPU    {:>10}  ({:>5.1} %)", format_energy(breakdown.gpu_j), p[0]);
    println!("  CPU    {:>10}  ({:>5.1} %)", format_energy(breakdown.cpu_j), p[1]);
    println!("  MEM    {:>10}  ({:>5.1} %)", format_energy(breakdown.mem_j), p[2]);
    println!("  Other  {:>10}  ({:>5.1} %)", format_energy(breakdown.other_j), p[3]);
    println!("  Node   {:>10}", format_energy(breakdown.node_j));

    println!("\nSlurm (sacct) view of the same job:");
    println!("  {}", result.sacct.to_sacct_line());
    println!(
        "  job window {}s vs time-stepping loop {:.1}s — the gap is the setup/teardown phase",
        result.sacct.elapsed_s,
        result.main_loop_duration_s()
    );
}
