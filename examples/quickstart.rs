//! Quickstart: measure the energy of a code region with PMT.
//!
//! This example builds a PMT meter over the simulated miniHPC node (through
//! the same NVML-style and pm_counters-style back-ends a real deployment would
//! use), runs a small real SPH simulation with the profiling hooks attached,
//! and prints the per-function energy summary.
//!
//! Run with: `cargo run --example quickstart [scenario]` where `scenario` is
//! any name from the scenario registry (Turb, Evr, Sedov, Noh, KH; defaults
//! to Turb).

use energy_aware_sim::cluster::{Cluster, SimClockAdapter, SimNodeSensor};
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::pmt::units::{format_duration, format_energy};
use energy_aware_sim::pmt::{aggregate_by_label, DomainKind, PowerMeter, ProfilingHooks};
use energy_aware_sim::sphsim::{scenario, Simulation};
use std::sync::Arc;

fn main() {
    // Pick a scenario by name from the registry (any of its short or full
    // names, case-insensitively).
    let requested = std::env::args().nth(1).unwrap_or_else(|| "Turb".to_string());
    let Some(chosen) = scenario::get(&requested) else {
        eprintln!(
            "unknown scenario {requested:?}; registered scenarios: {}",
            scenario::names().join(", ")
        );
        std::process::exit(2);
    };
    // One simulated miniHPC node (2x Xeon + 2x A100-PCIE) and a meter over it.
    let cluster = Cluster::new(SystemKind::MiniHpc, 1);
    let node = cluster.node(0).clone();
    let meter = Arc::new(
        PowerMeter::builder()
            .sensor(SimNodeSensor::per_die(node.clone()))
            .clock(SimClockAdapter::new(cluster.clock().clone()))
            .hostname(node.hostname())
            .build(),
    );

    // A small, real SPH run of the chosen scenario on the CPU with hooks
    // attached. (The simulated clock is advanced alongside the real work so
    // the meter integrates over a realistic time base.)
    let hooks = ProfilingHooks::new(meter.clone());
    let mut sim = Simulation::from_scenario(chosen.clone(), 512, 42).with_hooks(hooks);

    println!(
        "Running 5 timesteps of {} ({} particles)...\n",
        chosen.name(),
        sim.particles().len()
    );
    for _ in 0..5 {
        // Pretend each step keeps the node busy for ~2 simulated seconds.
        for gpu in node.gpus() {
            gpu.set_load(0.9);
        }
        cluster.advance(2.0);
        sim.step();
        cluster.set_idle();
    }

    // Per-function summary.
    let records = meter.records();
    println!("{:<22} {:>6} {:>14} {:>14}", "function", "calls", "time", "gpu energy");
    for agg in aggregate_by_label(&records) {
        println!(
            "{:<22} {:>6} {:>14} {:>14}",
            agg.label,
            agg.calls,
            format_duration(agg.total_time_s),
            format_energy(agg.energy_by_kind(DomainKind::Gpu)),
        );
    }

    let report = meter.report();
    let total: f64 = report.total_by_domain().values().sum();
    println!("\nTotal measured energy across all domains: {}", format_energy(total));
    println!("Rank report rows (CSV): {}", report.to_csv().lines().count() - 1);
}
