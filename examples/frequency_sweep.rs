//! GPU frequency down-scaling study (the Figure 4/5 workflow): sweep the GPU
//! compute clock on the simulated miniHPC node and report how energy,
//! time-to-solution and the energy-delay product respond — then let the
//! online governor find the same operating point without the sweep, so the
//! example doubles as an offline-vs-online regression check.
//!
//! Run with: `cargo run --example frequency_sweep`

use energy_aware_sim::autotune::{tune, Edp, GoldenSection, Objective};
use energy_aware_sim::energy_analysis::edp::{best_edp_frequency, normalized_edp_series, EdpPoint};
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{run_campaign, scenario, CampaignConfig};

fn measure(particles_per_rank: f64, freq: f64) -> EdpPoint {
    let turb = scenario::get("Turb").expect("built-in scenario");
    let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, turb, 2);
    config.particles_per_rank = particles_per_rank;
    config.timesteps = 10;
    config.gpu_frequency_hz = Some(freq);
    let result = run_campaign(&config);
    EdpPoint {
        frequency_hz: freq,
        energy_j: result.true_main_loop_energy_j,
        time_s: result.main_loop_duration_s(),
    }
}

fn main() {
    let frequencies = [1005.0e6, 1110.0e6, 1215.0e6, 1305.0e6, 1410.0e6];
    let particles_per_rank = 350.0f64.powi(3);

    println!("Sweeping the A100 compute clock on miniHPC ({particles_per_rank:.0} particles/GPU, 10 steps)\n");
    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>12}",
        "freq [MHz]", "energy [kJ]", "time [s]", "EDP [kJ*s]", "EDP norm [%]"
    );

    let mut points = Vec::new();
    for freq in frequencies {
        points.push(measure(particles_per_rank, freq));
    }

    let normalized = normalized_edp_series(&points, 1410.0e6).expect("sweep is non-empty");
    for (point, (_, norm)) in points.iter().zip(&normalized) {
        println!(
            "{:>10.0} {:>12.2} {:>10.2} {:>14.2} {:>12.1}",
            point.frequency_hz / 1.0e6,
            point.energy_j / 1.0e3,
            point.time_s,
            point.edp() / 1.0e3,
            norm * 100.0
        );
    }

    let offline_best = best_edp_frequency(&points);
    if let Some(best) = offline_best {
        println!(
            "\nOffline sweep: lowest energy-delay product at {:.0} MHz (baseline: 1410 MHz).",
            best / 1.0e6
        );
    }

    // The online governor searches the *full* DVFS grid (15 MHz steps, not
    // the coarse 5-point sweep above) in a handful of evaluations.
    let model = SystemKind::MiniHpc
        .node_builder()
        .build()
        .gpu(0)
        .expect("miniHPC has GPUs")
        .spec()
        .dvfs
        .clone();
    let mut search = GoldenSection::new(&model);
    let online = tune(&mut search, |f| Edp.score_point(&measure(particles_per_rank, f)), 500)
        .expect("online tuning produced a result");
    println!(
        "Online governor: golden-section converged to {:.0} MHz in {} evaluations \
         (grid has {} points).",
        online.best_frequency_hz / 1.0e6,
        online.evaluations,
        model.supported_range(model.f_min_hz, model.f_max_hz).len()
    );
    if let Some(best) = offline_best {
        let delta_steps = ((online.best_frequency_hz - best).abs() / model.f_step_hz).round();
        println!(
            "Online optimum is {delta_steps:.0} grid step(s) from the coarse sweep's best \
             (finer grid resolves the true minimum)."
        );
    }
}
