//! GPU frequency down-scaling study (the Figure 4/5 workflow): sweep the GPU
//! compute clock on the simulated miniHPC node and report how energy,
//! time-to-solution and the energy-delay product respond.
//!
//! Run with: `cargo run --example frequency_sweep`

use energy_aware_sim::energy_analysis::edp::{best_edp_frequency, normalized_edp_series, EdpPoint};
use energy_aware_sim::hwmodel::arch::SystemKind;
use energy_aware_sim::sphsim::{run_campaign, CampaignConfig, TestCase};

fn main() {
    let frequencies = [1005.0e6, 1110.0e6, 1215.0e6, 1305.0e6, 1410.0e6];
    let particles_per_rank = 350.0f64.powi(3);

    println!("Sweeping the A100 compute clock on miniHPC ({particles_per_rank:.0} particles/GPU, 10 steps)\n");
    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>12}",
        "freq [MHz]", "energy [kJ]", "time [s]", "EDP [kJ*s]", "EDP norm [%]"
    );

    let mut points = Vec::new();
    for freq in frequencies {
        let mut config = CampaignConfig::paper_defaults(SystemKind::MiniHpc, TestCase::SubsonicTurbulence, 2);
        config.particles_per_rank = particles_per_rank;
        config.timesteps = 10;
        config.gpu_frequency_hz = Some(freq);
        let result = run_campaign(&config);
        points.push(EdpPoint {
            frequency_hz: freq,
            energy_j: result.true_main_loop_energy_j,
            time_s: result.main_loop_duration_s(),
        });
    }

    let normalized = normalized_edp_series(&points, 1410.0e6);
    for (point, (_, norm)) in points.iter().zip(&normalized) {
        println!(
            "{:>10.0} {:>12.2} {:>10.2} {:>14.2} {:>12.1}",
            point.frequency_hz / 1.0e6,
            point.energy_j / 1.0e3,
            point.time_s,
            point.edp() / 1.0e3,
            norm * 100.0
        );
    }

    if let Some(best) = best_edp_frequency(&points) {
        println!(
            "\nLowest energy-delay product at {:.0} MHz (baseline: 1410 MHz).",
            best / 1.0e6
        );
    }
}
