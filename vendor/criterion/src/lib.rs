//! Minimal `criterion` facade (offline shim).
//!
//! Runs each benchmark a small fixed number of iterations and prints the mean
//! wall-clock time. No statistics, plots or baselines — just enough to keep
//! the workspace's Criterion benches compiling and runnable offline.

use std::time::Instant;

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Ignored by the shim; inputs are always rebuilt per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver handed to measurement closures.
pub struct Bencher {
    iterations: u64,
    /// Mean seconds per iteration of the last `iter*` call.
    last_mean_s: f64,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Self {
            iterations,
            last_mean_s: 0.0,
        }
    }

    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean_s = start.elapsed().as_secs_f64() / self.iterations as f64;
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = 0.0;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_secs_f64();
        }
        self.last_mean_s = total / self.iterations as f64;
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn report(name: &str, mean_s: f64) {
    if mean_s >= 1.0 {
        println!("{name:<40} {mean_s:>10.3} s/iter");
    } else if mean_s >= 1.0e-3 {
        println!("{name:<40} {:>10.3} ms/iter", mean_s * 1.0e3);
    } else {
        println!("{name:<40} {:>10.3} µs/iter", mean_s * 1.0e6);
    }
}

impl Criterion {
    /// Set the number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size as u64);
        f(&mut bencher);
        report(name.as_ref(), bencher.last_mean_s);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size as u64);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name.as_ref()), bencher.last_mean_s);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
