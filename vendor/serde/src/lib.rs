//! Minimal `serde` facade (offline shim).
//!
//! Provides the `Serialize`/`Deserialize` trait names plus the derive macros.
//! Nothing in this workspace serialises at runtime, so the traits are empty
//! and blanket-implemented; the derives compile to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
