//! No-op `Serialize`/`Deserialize` derive macros (offline shim).
//!
//! The workspace's `serde` shim blanket-implements both traits, so the derives
//! only need to accept the input (including `#[serde(...)]` field attributes)
//! and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
