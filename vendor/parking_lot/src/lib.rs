//! Minimal `parking_lot` facade (offline shim) over `std::sync`.
//!
//! Only the non-poisoning `Mutex`/`RwLock` API used by this workspace is
//! provided. Poisoning is absorbed by recovering the inner guard, matching
//! parking_lot's semantics of not propagating panics through locks.

use std::sync::{self, PoisonError};

/// Guard types re-exported with parking_lot's names.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
