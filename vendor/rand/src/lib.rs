//! Minimal `rand` facade (offline shim).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range(..)` over a splitmix64 generator: deterministic, seedable
//! and statistically adequate for particle initialisation and noise models.

use std::ops::Range;

/// Core random source: 64 fresh bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling front-end (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a canonical uniform distribution (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): passes BigCrush on 64-bit outputs.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            assert_eq!(x, b.gen_range(-2.0..3.0));
        }
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }
}
