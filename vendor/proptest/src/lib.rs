//! Minimal `proptest` facade (offline shim).
//!
//! Supports the subset used by this workspace: the `proptest!` macro over
//! functions whose arguments are drawn from range, tuple and
//! `collection::vec` strategies, plus `prop_assert!`-style assertions.
//! Each property runs [`NUM_CASES`] deterministic cases from a fixed seed, so
//! failures are reproducible.

/// Number of cases each property is executed with.
pub const NUM_CASES: u32 = 128;

pub mod test_runner {
    //! Deterministic case generator.

    /// splitmix64 generator driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed generator: every run explores the same cases.
        pub fn deterministic() -> Self {
            Self {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range");
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty integer range");
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Strategy wrapper produced by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro and its callers need.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Boolean property assertion (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each function's arguments are drawn from the given
/// strategies for [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut prop_rng = $crate::test_runner::TestRng::deterministic();
                for prop_case in 0..$crate::NUM_CASES {
                    let _ = prop_case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    // `proptest!` resolves textually within the defining crate; the prelude
    // import real callers use is exercised by the workspace's tests/ suite.

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.5, n in 1u64..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec(0.0f64..1.0, 1..10),
            p in (0.0f64..1.0, 0u32..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(p.0 < 1.0 && p.1 < 5);
        }
    }
}
