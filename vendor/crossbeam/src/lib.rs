//! Minimal `crossbeam` facade (offline shim): unbounded MPMC channels.
//!
//! Unlike `std::sync::mpsc`, both endpoints are `Clone` and `Sync`, matching
//! the crossbeam API the workspace relies on (receivers shared across scoped
//! threads by reference).

pub mod channel {
    //! Unbounded MPMC channel over a `Mutex<VecDeque>` + `Condvar`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    /// Error returned by [`Sender::send`]; never produced by this shim (the
    /// queue is unbounded and never closes) but kept for API compatibility.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    /// Error returned by [`Receiver::recv`]; never produced by this shim.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on a closed channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks, never fails.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().expect("channel mutex poisoned");
            queue.push_back(value);
            self.0.available.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                queue = self.0.available.wait(queue).expect("channel mutex poisoned");
            }
        }

        /// Dequeue a message if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.queue.lock().expect("channel mutex poisoned").pop_front()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), None);
        }

        #[test]
        fn cross_thread_blocking_recv() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99u32).unwrap();
            assert_eq!(handle.join().unwrap(), 99);
        }
    }
}
