//! # energy-aware-sim — umbrella crate
//!
//! Re-exports the public API of the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`pmt`] — the Power Measurement Toolkit (sensors, back-ends, meter,
//!   instrumentation, reports);
//! * [`hwmodel`] — the simulated CPU+GPU node hardware (power models, DVFS,
//!   virtual sysfs, architecture presets);
//! * [`cluster`] — multi-node/multi-rank runtime and PMT↔hardware adapters;
//! * [`slurm`] — Slurm-like job lifecycle and energy accounting;
//! * [`sphsim`] — the SPH mini-framework (real CPU propagator + paper-scale
//!   campaign executor);
//! * [`energy_analysis`] — device/function breakdowns, EDP, validation;
//! * [`experiments`] — the per-figure/table experiment campaigns.
//!
//! See `examples/` for runnable entry points and `DESIGN.md` for the system
//! inventory.

pub use cluster;
pub use energy_analysis;
pub use experiments;
pub use hwmodel;
pub use pmt;
pub use slurm;
pub use sphsim;
