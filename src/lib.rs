//! # energy-aware-sim — umbrella crate
//!
//! Re-exports the public API of the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`pmt`] — the Power Measurement Toolkit (sensors, back-ends, meter,
//!   instrumentation, region observers, reports);
//! * [`hwmodel`] — the simulated CPU+GPU node hardware (power models, DVFS,
//!   virtual sysfs, architecture presets);
//! * [`cluster`] — multi-node/multi-rank runtime and PMT↔hardware adapters;
//! * [`slurm`] — Slurm-like job lifecycle and energy accounting;
//! * [`sphsim`] — the SPH mini-framework (real CPU propagator + paper-scale
//!   campaign executor, both governable through region observers);
//! * [`energy_analysis`] — device/function breakdowns, EDP, validation;
//! * [`autotune`] — the online per-stage DVFS governor: pluggable objectives
//!   (energy, EDP, ED²P, time-constrained energy), exhaustive/golden-section/
//!   hill-climb search over the DVFS grid, and a [`pmt::RegionObserver`]
//!   governor that converges each pipeline stage to its min-EDP frequency at
//!   runtime instead of reading it off the offline sweep;
//! * [`experiments`] — the per-figure/table experiment campaigns plus the
//!   `autotune_convergence` online-vs-offline validation;
//! * [`telemetry`] — dependency-free structured tracing and metrics: spans
//!   with rank/thread tags, counters/gauges/histograms, JSONL and
//!   Chrome-trace (Perfetto) exporters, wired through every layer above.
//!
//! See `examples/` for runnable entry points and `README.md` for the crate
//! map and quickstart.

pub use autotune;
pub use cluster;
pub use energy_analysis;
pub use experiments;
pub use hwmodel;
pub use pmt;
pub use slurm;
pub use sphsim;
pub use telemetry;
